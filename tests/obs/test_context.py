"""Query-correlation context: stamping, inheritance, worker carriage."""

import pickle

from repro.obs import (
    ContextTask,
    QueryContext,
    carry_context,
    current_attrs,
    current_context,
    new_query_id,
    query_context,
)
from repro.reliability import run_tasks


class TestQueryContext:
    def test_no_context_by_default(self):
        assert current_context() is None
        assert current_attrs() == {}

    def test_attrs_omit_unset_fields(self):
        ctx = QueryContext(query_id="q1")
        assert ctx.attrs() == {"query_id": "q1"}
        full = QueryContext(query_id="q1", session_id="s1", query_round=2)
        assert full.attrs() == {"query_id": "q1", "session_id": "s1",
                                "query_round": 2}

    def test_enter_and_restore(self):
        with query_context("q1", session_id="s1", query_round=0):
            assert current_attrs() == {"query_id": "q1",
                                       "session_id": "s1",
                                       "query_round": 0}
        assert current_context() is None

    def test_nested_context_inherits_unset_fields(self):
        with query_context("q1", session_id="s1", query_round=0):
            with query_context(query_round=3) as inner:
                assert inner.query_id == "q1"
                assert inner.session_id == "s1"
                assert inner.query_round == 3
            # Exiting the nested round restores the outer one.
            assert current_context().query_round == 0

    def test_generated_ids_are_unique_and_short(self):
        ids = {new_query_id() for _ in range(32)}
        assert len(ids) == 32
        assert all(len(i) == 12 for i in ids)

    def test_context_restored_on_exception(self):
        try:
            with query_context("q1"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_context() is None


class TestSpanStamping:
    def test_spans_and_events_carry_context(self, fresh_telemetry):
        t = fresh_telemetry
        with query_context("q9", session_id="s9", query_round=1):
            with t.span("work", clip="a"):
                pass
            t.event("something", level="warning", detail=1)
        span = t.spans[-1]
        assert span.attrs["query_id"] == "q9"
        assert span.attrs["session_id"] == "s9"
        assert span.attrs["clip"] == "a"
        event = t.events[-1]
        assert event["query_id"] == "q9"
        assert event["detail"] == 1

    def test_explicit_attrs_win_over_context(self, fresh_telemetry):
        t = fresh_telemetry
        with query_context("ambient"):
            with t.span("work", query_id="explicit"):
                pass
        assert t.spans[-1].attrs["query_id"] == "explicit"

    def test_no_context_means_no_extra_attrs(self, fresh_telemetry):
        t = fresh_telemetry
        with t.span("work", clip="a"):
            pass
        assert "query_id" not in t.spans[-1].attrs


def _traced_square(x):
    from repro.obs import current_context

    ctx = current_context()
    return (x * x, None if ctx is None else ctx.query_id)


class TestContextTask:
    def test_carry_context_without_context_is_identity(self):
        assert carry_context(_traced_square) is _traced_square

    def test_carry_context_freezes_active_context(self):
        with query_context("q1", session_id="s1"):
            wrapped = carry_context(_traced_square)
        assert isinstance(wrapped, ContextTask)
        # Calling outside the original context still re-enters it.
        assert wrapped(3) == (9, "q1")
        assert current_context() is None

    def test_context_task_is_picklable(self):
        task = ContextTask(_traced_square,
                           QueryContext(query_id="q2", session_id="s2"))
        clone = pickle.loads(pickle.dumps(task))
        assert clone(4) == (16, "q2")

    def test_run_tasks_workers_see_submitting_context(self):
        # Serial path (max_workers=1) exercises the same carry_context
        # seam as the pool without the process spawn cost.
        with query_context("q77"):
            batch = run_tasks(_traced_square, [2, 3], max_workers=1)
        assert batch.results == [(4, "q77"), (9, "q77")]
