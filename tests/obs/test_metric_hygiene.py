"""Metric hygiene: every metric literal in src/ is declared, and every
declaration is used.

A metric recorded under an undeclared name silently falls outside the
pre-declared schema (exporters would still emit it, but ``# HELP`` text
and the stable metric surface are lost); a declared-but-never-recorded
metric is schema rot.  Both directions are enforced statically so the
drift is caught at the call site that introduced it, not in a dashboard
weeks later.
"""

import re
from pathlib import Path

from repro.obs import DEFAULT_METRICS

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: ``<anything>.counter("name")`` / ``.gauge(`` / ``.histogram(`` with a
#: string literal first argument.  Dynamic names (a variable first arg)
#: don't match — there are none in src/ today, and adding one should be
#: a deliberate decision that updates this test.
_CALL_RE = re.compile(
    r"""\.\s*(counter|gauge|histogram)\(\s*\n?\s*["']([^"']+)["']""",
    re.MULTILINE)

#: Metrics declared for consumers other than src/repro itself.
#: (Currently empty — every declared metric has an in-tree recorder.)
_DECLARED_ONLY: frozenset = frozenset()


def _calls_in_source():
    """(kind, name, file) for every metric-literal call under src/."""
    calls = []
    for path in sorted(SRC.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        for match in _CALL_RE.finditer(text):
            calls.append((match.group(1), match.group(2),
                          str(path.relative_to(SRC))))
    return calls


def test_every_recorded_metric_is_declared():
    declared = {name: kind for kind, name, _ in DEFAULT_METRICS}
    undeclared = sorted(
        {(kind, name, where) for kind, name, where in _calls_in_source()
         if name not in declared})
    assert not undeclared, (
        "metric names recorded in src/ but missing from "
        f"DEFAULT_METRICS: {undeclared}")


def test_every_recorded_metric_has_declared_kind():
    declared = {name: kind for kind, name, _ in DEFAULT_METRICS}
    mismatched = sorted(
        {(kind, name, where, declared[name])
         for kind, name, where in _calls_in_source()
         if name in declared and declared[name] != kind})
    assert not mismatched, (
        f"metric recorded under a different kind than declared: "
        f"{mismatched}")


def test_every_declared_metric_is_recorded_somewhere():
    used = {name for _, name, _ in _calls_in_source()}
    unused = sorted(name for _, name, _ in DEFAULT_METRICS
                    if name not in used and name not in _DECLARED_ONLY)
    assert not unused, (
        f"DEFAULT_METRICS entries no code records into: {unused}")


def test_declarations_are_unique():
    names = [name for _, name, _ in DEFAULT_METRICS]
    assert len(names) == len(set(names))
