"""Exporters: fork-aware JSONL traces, sidecar merging, Prometheus text."""

import json
import os

from repro.obs import (
    Telemetry,
    TraceWriter,
    merge_worker_traces,
    prometheus_text,
    write_prometheus,
)


def _lines(path):
    return [json.loads(line)
            for line in path.read_text().splitlines() if line]


class TestTraceWriter:
    def test_one_json_line_per_event(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        w = TraceWriter(path)
        w.write({"type": "event", "name": "a"})
        w.write({"type": "event", "name": "b"})
        w.close()
        assert [r["name"] for r in _lines(path)] == ["a", "b"]

    def test_spans_streamed_through_registry(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        t = Telemetry().configure(trace_path=path)
        with t.span("outer"):
            with t.span("inner"):
                pass
        records = _lines(path)
        by_name = {r["name"]: r for r in records}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_id"] is None
        t.writer.close()

    def test_foreign_pid_writes_to_sidecar(self, tmp_path):
        # Simulate a forked worker without forking: pretend the writer
        # was created by another process, so this pid is "a worker".
        path = tmp_path / "trace.jsonl"
        w = TraceWriter(path)
        w._owner_pid = os.getpid() + 1
        w.write({"type": "span", "name": "from-worker"})
        sidecar = tmp_path / f"trace.jsonl.worker-{os.getpid()}"
        assert sidecar.exists()
        assert not path.exists()
        w.close()


class TestMergeWorkerTraces:
    def test_merges_sidecars_and_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps({"name": "parent"}) + "\n")
        # A healthy worker file and one killed mid-write: its last line
        # is torn JSON and must be dropped, not fatal.
        (tmp_path / "trace.jsonl.worker-111").write_text(
            json.dumps({"name": "w1-a"}) + "\n"
            + json.dumps({"name": "w1-b"}) + "\n")
        (tmp_path / "trace.jsonl.worker-222").write_text(
            json.dumps({"name": "w2-a"}) + "\n"
            + '{"name": "w2-torn", "wall_m')
        assert merge_worker_traces(path) == 3
        names = [r["name"] for r in _lines(path)]
        assert names == ["parent", "w1-a", "w1-b", "w2-a"]
        assert not list(tmp_path.glob("*.worker-*"))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("")
        (tmp_path / "trace.jsonl.worker-5").write_text(
            "\n" + json.dumps({"name": "x"}) + "\n\n")
        assert merge_worker_traces(path) == 1

    def test_no_sidecars_is_a_noop(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("not touched")
        assert merge_worker_traces(path) == 0
        assert path.read_text() == "not touched"


class TestPrometheus:
    def test_counter_gets_total_suffix_and_labels(self, fresh_telemetry):
        t = fresh_telemetry
        t.counter("pipeline.stage.cache_hit").inc(stage="segment")
        text = prometheus_text(t)
        assert ('pipeline_stage_cache_hit_total{stage="segment"} 1'
                in text)
        assert "# TYPE pipeline_stage_cache_hit_total counter" in text

    def test_empty_families_still_emit_headers(self, fresh_telemetry):
        # Acceptance: a dump from a run with no RF rounds still names
        # the full metric surface.
        text = prometheus_text(fresh_telemetry)
        assert "# TYPE rf_round_latency_ms histogram" in text
        assert "# TYPE pipeline_stage_cache_hit_total counter" in text

    def test_histogram_exposition(self, fresh_telemetry):
        t = fresh_telemetry
        h = t.histogram("rf.round.latency_ms")
        h.observe(3.0)
        h.observe(40.0)
        text = prometheus_text(t)
        assert 'rf_round_latency_ms_bucket{le="5"} 1' in text
        assert 'rf_round_latency_ms_bucket{le="+Inf"} 2' in text
        assert "rf_round_latency_ms_sum 43" in text
        assert "rf_round_latency_ms_count 2" in text

    def test_label_values_escaped(self, fresh_telemetry):
        t = fresh_telemetry
        t.counter("weird").inc(path='C:\\tmp\\"x"')
        text = prometheus_text(t)
        assert 'path="C:\\\\tmp\\\\\\"x\\""' in text

    def test_write_prometheus_creates_parents(self, fresh_telemetry,
                                              tmp_path):
        out = tmp_path / "deep" / "dir" / "metrics.prom"
        write_prometheus(fresh_telemetry, out)
        assert out.read_text().startswith("# HELP")
