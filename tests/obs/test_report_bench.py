"""Run summaries, the rendered stats report, and the bench schema."""

import json

import pytest

from repro.obs import (
    BENCH_SCHEMA,
    SUMMARY_SCHEMA,
    Telemetry,
    flatten_metrics,
    merge_bench,
    render_run_report,
    run_summary,
)


def _busy_registry():
    t = Telemetry()
    with t.span("cli.simulate"):
        with t.span("pipeline.stage", stage="segment"):
            pass
    t.counter("pipeline.stage.cache_hit").inc(3, stage="segment")
    t.counter("pipeline.stage.cache_miss").inc(1, stage="segment")
    t.counter("svm.gram.columns_reused").inc(90)
    t.counter("svm.gram.columns_computed").inc(10)
    t.counter("store.quarantined").inc(reason="size-mismatch")
    t.counter("reliability.task.retries").inc(2, reason="RetryableError")
    t.histogram("rf.round.latency_ms").observe(12.0)
    t.histogram("rf.round.latency_ms").observe(18.0)
    t.event("store.quarantined", level="warning", key="blob-1",
            reason="size-mismatch")
    return t


class TestRunSummary:
    def test_schema_and_span_accounting(self):
        t = _busy_registry()
        summary = run_summary(t)
        assert summary["schema"] == SUMMARY_SCHEMA
        assert summary["spans"]["count"] == 2
        assert summary["spans"]["dropped"] == 0
        # Only the parentless span contributes to top-level wall time.
        names = [s["name"] for s in summary["spans"]["slowest"]]
        assert "cli.simulate" in names

    def test_only_sampled_families_serialized(self):
        summary = run_summary(_busy_registry())
        names = {m["name"] for m in summary["metrics"]}
        assert "pipeline.stage.cache_hit" in names
        assert "reliability.pool.restarts" not in names  # no samples

    def test_error_spans_and_warnings_captured(self):
        t = Telemetry()
        with pytest.raises(ValueError):
            with t.span("pipeline.stage", stage="track"):
                raise ValueError("bad frame")
        t.event("store.quarantined", level="warning", reason="checksum")
        t.event("just.info", level="info")
        summary = run_summary(t)
        assert summary["spans"]["errors"][0]["error_type"] == "ValueError"
        assert [w["name"] for w in summary["warnings"]] \
            == ["store.quarantined"]

    def test_summary_survives_json_round_trip(self):
        summary = run_summary(_busy_registry())
        assert json.loads(json.dumps(summary)) == summary


class TestRenderRunReport:
    def test_report_sections_present(self):
        report = render_run_report(run_summary(_busy_registry()))
        assert "== run report ==" in report
        assert "-- slowest spans --" in report
        assert "-- cache economics --" in report
        assert "-- failure taxonomy --" in report
        assert "-- relevance feedback --" in report

    def test_cache_ratios_rendered(self):
        report = render_run_report(run_summary(_busy_registry()))
        assert "stage segment hits" in report
        assert "75.0%" in report       # 3 hits / 4 total
        assert "gram columns reused" in report
        assert "90.0%" in report       # 90 reused / 100 total

    def test_failures_and_quarantines_rendered(self):
        report = render_run_report(run_summary(_busy_registry()))
        assert "retries[RetryableError]: 2" in report
        assert "quarantined[size-mismatch]" in report
        assert "warning store.quarantined" in report

    def test_rf_rounds_rendered(self):
        report = render_run_report(run_summary(_busy_registry()))
        assert "rounds: 2, mean 15.0 ms" in report
        assert "p99" in report  # quantiles interpolated from buckets

    def test_clean_run_says_so(self):
        report = render_run_report(run_summary(Telemetry()))
        assert "clean run" in report
        assert "no artifact-store traffic" in report


class TestBenchSchema:
    def test_flatten_names_series_and_histograms(self):
        flat = flatten_metrics(_busy_registry())
        assert flat["pipeline.stage.cache_hit{stage=segment}"] == 3
        assert flat["rf.round.latency_ms.count"] == 2
        assert flat["rf.round.latency_ms.sum"] == 30.0
        assert flat["rf.round.latency_ms.mean"] == 15.0

    def test_merge_bench_preserves_other_sections(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps({"older": {"schema": "x"}}))
        doc = merge_bench(path, "obs", _busy_registry(),
                          meta={"windows": [2, 3]})
        assert doc["older"] == {"schema": "x"}
        assert doc["obs"]["schema"] == BENCH_SCHEMA
        assert doc["obs"]["meta"] == {"windows": [2, 3]}
        on_disk = json.loads(path.read_text())
        assert on_disk == doc

    def test_merge_bench_recovers_corrupt_file(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text("{truncated")
        doc = merge_bench(path, "obs", Telemetry())
        assert set(doc) == {"obs"}
