"""Quantile interpolation and SLO evaluation/burn-rate math."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    Histogram,
    SLObjective,
    bucket_quantile,
    evaluate_slos,
    evaluate_slos_from_summary,
    quantile_from_snapshot,
    render_slos,
    run_summary,
)


class TestBucketQuantile:
    def test_interpolates_within_bucket(self):
        # 10 observations uniformly counted into (0, 10]: p50 -> 5.0.
        assert bucket_quantile((10.0,), (10,), 10, 0.5) == pytest.approx(5.0)

    def test_multi_bucket(self):
        bounds = (1.0, 10.0, 100.0)
        cumulative = (5, 9, 10)
        # p90 target = 9 observations, exactly the <=10 cumulative.
        assert bucket_quantile(bounds, cumulative, 10, 0.9) == \
            pytest.approx(10.0)
        # p95 lands in the (10, 100] bucket, halfway through its 1 count.
        assert bucket_quantile(bounds, cumulative, 10, 0.95) == \
            pytest.approx(55.0)

    def test_overflow_clamps_to_last_finite_bound(self):
        # All observations past the last bound: report the bound, not a
        # fabricated extrapolation.
        assert bucket_quantile((1.0, 2.0), (0, 0), 5, 0.99) == 2.0

    def test_empty_is_nan(self):
        assert math.isnan(bucket_quantile((1.0,), (0,), 0, 0.5))

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ConfigurationError, match="quantile"):
            bucket_quantile((1.0,), (1,), 1, 1.5)


class TestHistogramQuantile:
    def test_live_and_snapshot_agree(self):
        h = Histogram("t")
        for v in (0.2, 1.5, 3.0, 4.0, 40.0, 80.0, 900.0):
            h.observe(v)
        live = h.quantile(0.5)
        snap = h.snapshot()["series"][0]
        assert quantile_from_snapshot(snap, 0.5) == pytest.approx(live)
        assert 1.0 <= live <= 5.0

    def test_absent_series_is_nan_and_not_materialised(self):
        h = Histogram("t")
        assert math.isnan(h.quantile(0.9, op="results"))
        assert h.series() == []


class TestSLObjective:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="kind"):
            SLObjective(name="x", metric="m", kind="nope", threshold=1.0)

    def test_rejects_degenerate_quantile(self):
        with pytest.raises(ConfigurationError, match="quantile"):
            SLObjective(name="x", metric="m", kind="quantile_below",
                        threshold=1.0, quantile=1.0)


class TestEvaluateSlos:
    def test_no_samples_is_met_with_zero_samples(self, fresh_telemetry):
        statuses = evaluate_slos(fresh_telemetry)
        assert all(st.met for st in statuses)
        assert all(st.samples == 0 for st in statuses)
        # Nothing recorded for unsampled objectives.
        assert fresh_telemetry.gauge("slo.attainment").series() == []

    def test_quantile_objective_met(self, fresh_telemetry):
        t = fresh_telemetry
        for _ in range(100):
            t.histogram("query.round.latency_ms").observe(5.0, op="results")
        st = next(s for s in evaluate_slos(t)
                  if s.name == "round-latency-p99")
        assert st.met
        assert st.samples == 100
        assert st.burn_rate < 1.0

    def test_quantile_objective_breach_burns_budget(self, fresh_telemetry):
        t = fresh_telemetry
        h = t.histogram("query.round.latency_ms")
        for _ in range(90):
            h.observe(5.0, op="results")
        for _ in range(10):
            h.observe(2000.0, op="results")  # 10% over the 500 ms target
        st = next(s for s in evaluate_slos(t)
                  if s.name == "round-latency-p99")
        assert not st.met
        # 10% bad over a 1% budget: burning 10x.
        assert st.burn_rate == pytest.approx(10.0, rel=0.05)
        assert t.counter("slo.breaches").value(slo=st.name) == 1
        assert t.gauge("slo.burn_rate").value(slo=st.name) == \
            pytest.approx(st.burn_rate)

    def test_gauge_objectives(self, fresh_telemetry):
        t = fresh_telemetry
        t.gauge("query.coverage_fraction").set(0.80)
        t.gauge("ingest.lag_frames").set(1000.0)
        by_name = {s.name: s for s in evaluate_slos(t)}
        cov = by_name["coverage-fraction"]
        assert not cov.met
        assert cov.burn_rate == pytest.approx(0.95 / 0.80)
        lag = by_name["ingest-freshness"]
        assert not lag.met
        assert lag.burn_rate == pytest.approx(2.0)

    def test_render_marks_misses(self, fresh_telemetry):
        t = fresh_telemetry
        t.gauge("query.coverage_fraction").set(0.99)
        text = render_slos(evaluate_slos(t))
        assert "ok   coverage-fraction" in text
        assert "no samples yet" in text  # the unsampled objectives


class TestEvaluateFromSummary:
    def test_summary_agrees_with_live(self, fresh_telemetry):
        t = fresh_telemetry
        h = t.histogram("query.round.latency_ms")
        for _ in range(95):
            h.observe(5.0, op="results")
        for _ in range(5):
            h.observe(2000.0, op="feed")
        t.gauge("query.coverage_fraction").set(0.97)
        live = {s.name: s for s in evaluate_slos(t, record=False)}
        summary = run_summary(t)
        persisted = {s.name: s for s in evaluate_slos_from_summary(summary)}
        for name, st in live.items():
            assert persisted[name].met == st.met
            assert persisted[name].samples == st.samples
            if st.samples:
                assert persisted[name].burn_rate == \
                    pytest.approx(st.burn_rate)

    def test_empty_summary(self):
        statuses = evaluate_slos_from_summary({"metrics": []})
        assert all(st.met and st.samples == 0 for st in statuses)
