"""Tail-latency sampling profiler: keep/discard contract, output format."""

import re
import time

import pytest

from repro.errors import ConfigurationError
from repro.obs import RoundProfile, TailProfiler


def _spin(seconds: float) -> None:
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(i * i for i in range(200))


class TestTailProfiler:
    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ConfigurationError, match="threshold_ms"):
            TailProfiler(0)
        with pytest.raises(ConfigurationError, match="interval_s"):
            TailProfiler(10.0, interval_s=0)

    def test_slow_round_is_kept(self, fresh_telemetry):
        prof = TailProfiler(threshold_ms=10.0, interval_s=0.001)
        with prof.round(op="results") as rp:
            _spin(0.05)
        assert rp.kept
        assert rp.wall_ms >= 10.0
        assert rp.sample_count() > 0
        assert prof.profiles == [rp]
        t = fresh_telemetry
        assert t.counter("obs.profiles.captured").total() == 1
        events = [e for e in t.events if e["name"] == "obs.profile_captured"]
        assert len(events) == 1
        assert events[0]["op"] == "results"
        assert "_spin" in events[0]["profile"]

    def test_fast_round_is_discarded(self, fresh_telemetry):
        prof = TailProfiler(threshold_ms=10_000.0, interval_s=0.001)
        with prof.round() as rp:
            _spin(0.01)
        assert not rp.kept
        assert rp.samples == {}
        assert prof.profiles == []
        assert fresh_telemetry.counter("obs.profiles.discarded").total() == 1

    def test_kept_profiles_are_bounded(self):
        prof = TailProfiler(threshold_ms=0.001, interval_s=0.001,
                            max_profiles=2)
        for _ in range(4):
            with prof.round():
                _spin(0.002)
        assert len(prof.profiles) == 2

    def test_collapsed_format(self):
        rp = RoundProfile(threshold_ms=1.0)
        rp.samples = {"main (a.py:1);work (b.py:9)": 3,
                      "main (a.py:1);idle (c.py:2)": 7}
        lines = rp.collapsed().splitlines()
        assert lines[0] == "main (a.py:1);idle (c.py:2) 7"  # heaviest first
        assert all(re.fullmatch(r".+ \d+", ln) for ln in lines)

    def test_write_profiles(self, tmp_path):
        prof = TailProfiler(threshold_ms=0.001, interval_s=0.001)
        with prof.round():
            _spin(0.05)  # long enough for the ticker to land samples
        paths = prof.write_profiles(tmp_path / "profiles")
        assert len(paths) == 1
        assert paths[0].endswith(".collapsed")
        text = (tmp_path / "profiles").glob("*.collapsed")
        content = next(iter(text)).read_text()
        assert content.strip()  # stack lines present
