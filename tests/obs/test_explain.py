"""Offline span-tree reconstruction and round rendering."""

import json

from repro.obs import (
    build_span_tree,
    load_trace_spans,
    merge_span_events,
    render_round,
    render_session_listing,
    render_span_tree,
)


def _span(name, span_id, parent_id=None, *, pid=100, wall_ms=1.0,
          started_at=0.0, status="ok", attrs=None, **extra):
    record = {"type": "span", "name": name, "span_id": span_id,
              "parent_id": parent_id, "pid": pid, "wall_ms": wall_ms,
              "cpu_ms": wall_ms, "started_at": started_at,
              "status": status}
    if attrs:
        record["attrs"] = attrs
    record.update(extra)
    return record


class TestBuildSpanTree:
    def test_nests_children_under_parents(self):
        events = [
            _span("root", "a-1", started_at=0.0),
            _span("child", "a-2", "a-1", started_at=1.0),
            _span("grandchild", "a-3", "a-2", started_at=2.0),
        ]
        roots = build_span_tree(events)
        assert len(roots) == 1
        assert roots[0]["event"]["name"] == "root"
        child = roots[0]["children"][0]
        assert child["event"]["name"] == "child"
        assert child["children"][0]["event"]["name"] == "grandchild"

    def test_orphan_parent_becomes_root(self):
        events = [_span("orphan", "a-2", "a-99")]
        roots = build_span_tree(events)
        assert [r["event"]["name"] for r in roots] == ["orphan"]

    def test_siblings_ordered_by_start_time(self):
        events = [
            _span("root", "a-1", started_at=0.0),
            _span("late", "a-3", "a-1", started_at=5.0),
            _span("early", "a-2", "a-1", started_at=1.0),
        ]
        roots = build_span_tree(events)
        names = [c["event"]["name"] for c in roots[0]["children"]]
        assert names == ["early", "late"]


class TestMergeSpanEvents:
    def test_dedup_by_pid_and_span_id(self):
        a = _span("x", "a-1", pid=100)
        merged = merge_span_events([a], [dict(a)], [_span("x", "a-1",
                                                          pid=200)])
        assert len(merged) == 2  # same id, different pid = distinct

    def test_cross_pid_spans_marked_in_render(self):
        events = [
            _span("parent", "a-1", pid=100, started_at=0.0, wall_ms=10.0),
            _span("worker", "b-1", "a-1", pid=200, started_at=1.0,
                  wall_ms=4.0),
        ]
        text = render_span_tree(events, total_ms=10.0)
        assert "[pid 200]" in text
        assert "parent" in text.splitlines()[0]


class TestRenderSpanTree:
    def test_percentages_against_total(self):
        events = [_span("root", "a-1", wall_ms=5.0)]
        text = render_span_tree(events, total_ms=10.0)
        assert "50.0%" in text

    def test_error_span_marked(self):
        events = [_span("boom", "a-1", status="error",
                        error_type="OSError")]
        assert "!ERROR OSError" in render_span_tree(events)

    def test_context_attrs_suppressed_per_line(self):
        events = [_span("x", "a-1",
                        attrs={"query_id": "q", "clip": "tunnel"})]
        text = render_span_tree(events)
        assert "clip=tunnel" in text
        assert "query_id" not in text

    def test_empty(self):
        assert "no spans" in render_span_tree([])


class TestLoadTraceSpans:
    def test_filters_by_query_id_and_skips_torn_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = [
            json.dumps(_span("mine", "a-1", attrs={"query_id": "q1"})),
            json.dumps(_span("other", "a-2", attrs={"query_id": "q2"})),
            json.dumps({"type": "event", "name": "not-a-span"}),
            '{"torn": tru',  # crashed writer tail
        ]
        path.write_text("\n".join(lines) + "\n")
        spans = load_trace_spans(path, query_id="q1")
        assert [s["name"] for s in spans] == ["mine"]
        assert len(load_trace_spans(path)) == 2


class TestRenderRound:
    def _row(self, **overrides):
        row = {
            "round_index": 2, "op": "results", "latency_ms": 12.5,
            "created_at": "2026-08-08T00:00:00Z", "query_id": "qabc",
            "spans": [_span("query.round", "a-1", wall_ms=12.5)],
            "profile": "",
            "detail": {
                "nomination_recall": 0.9,
                "bags_scanned_fraction": 0.75,
                "cache": {"hit_rate": 0.5},
                "engine": {
                    "bags_total": 40, "bags_scored": 30,
                    "shards": [{"clip_id": "tunnel", "candidates": 15,
                                "n_bags": 20, "nomination_recall": 0.9,
                                "wall_ms": 3.0}],
                },
                "coverage": {"summary": "complete: 1 shard(s), 40 bags"},
            },
        }
        row.update(overrides)
        return row

    def test_quality_line_and_shards(self):
        text = render_round(self._row())
        assert "round 2 · results · 12.5 ms" in text
        assert "nomination recall 0.900" in text
        assert "bags scored 30/40 (75.0% scanned)" in text
        assert "gram cache hit-rate 50.0%" in text
        assert "coverage: complete: 1 shard(s), 40 bags" in text
        assert "shard tunnel: 15/20 candidates, recall 0.900" in text

    def test_profile_excerpt(self):
        stacks = "\n".join(f"main (a.py:1);f{i} (b.py:{i}) {i}"
                           for i in range(8))
        text = render_round(self._row(profile=stacks))
        assert "tail profile captured — 8 distinct stack(s)" in text
        assert "... 3 more" in text

    def test_extra_spans_merged_into_tree(self):
        extra = [_span("worker.load", "b-1", "a-1", pid=999, wall_ms=2.0)]
        text = render_round(self._row(), extra_spans=extra)
        assert "worker.load" in text
        assert "[pid 999]" in text


class TestSessionListing:
    def test_empty(self):
        assert "no ledgered query rounds" in render_session_listing([])

    def test_rows(self):
        text = render_session_listing([
            {"session_id": "u:c:e", "query_id": "q1", "rounds": 3,
             "last_round": 2, "last_at": "2026-08-08T00:00:00Z"}])
        assert "u:c:e" in text
        assert "rounds=3" in text
