"""Span semantics: nesting, timing, exception propagation, bounds."""

import threading

import pytest

from repro.obs import Telemetry


def _fake_clocks():
    """Deterministic wall/cpu clocks advancing 10ms / 4ms per read pair."""
    state = {"wall": 0.0, "cpu": 0.0}

    def wall():
        state["wall"] += 0.010
        return state["wall"]

    def cpu():
        state["cpu"] += 0.004
        return state["cpu"]

    return wall, cpu


class TestNesting:
    def test_children_record_their_parent(self, fresh_telemetry):
        t = fresh_telemetry
        with t.span("outer") as outer:
            with t.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with t.span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_finish_order_is_children_first(self, fresh_telemetry):
        t = fresh_telemetry
        with t.span("outer"):
            with t.span("inner"):
                pass
        assert [s.name for s in t.spans] == ["inner", "outer"]

    def test_stack_unwinds_after_exit(self, fresh_telemetry):
        t = fresh_telemetry
        with t.span("a"):
            pass
        with t.span("b") as b:
            assert b.parent_id is None

    def test_threads_build_independent_branches(self, fresh_telemetry):
        t = fresh_telemetry
        seen = {}

        def worker():
            with t.span("thread-root") as sp:
                seen["parent"] = sp.parent_id

        with t.span("main-root"):
            th = threading.Thread(target=worker)
            th.start()
            th.join()
        # The other thread's stack is its own: no cross-thread parent.
        assert seen["parent"] is None

    def test_attrs_settable_mid_flight(self, fresh_telemetry):
        with fresh_telemetry.span("work", stage="segment") as sp:
            sp.set(items=7)
        assert sp.attrs == {"stage": "segment", "items": 7}


class TestTimingAndErrors:
    def test_wall_and_cpu_measured_with_injected_clocks(self):
        wall, cpu = _fake_clocks()
        t = Telemetry(wall_clock=wall, cpu_clock=cpu)
        with t.span("timed") as sp:
            pass
        assert sp.wall_ms == pytest.approx(10.0)
        assert sp.cpu_ms == pytest.approx(4.0)

    def test_exception_marks_error_and_propagates(self, fresh_telemetry):
        t = fresh_telemetry
        with pytest.raises(ValueError, match="boom"):
            with t.span("failing"):
                raise ValueError("boom")
        sp = t.spans[-1]
        assert sp.status == "error"
        assert sp.error_type == "ValueError"
        assert sp.error == "boom"
        ev = sp.to_event()
        assert ev["error_type"] == "ValueError"

    def test_exception_in_child_leaves_parent_ok(self, fresh_telemetry):
        t = fresh_telemetry
        with t.span("outer") as outer:
            with pytest.raises(RuntimeError):
                with t.span("inner"):
                    raise RuntimeError("inner only")
        assert outer.status == "ok"
        assert t.spans[0].status == "error"

    def test_error_still_pops_stack(self, fresh_telemetry):
        t = fresh_telemetry
        with pytest.raises(RuntimeError):
            with t.span("failing"):
                raise RuntimeError
        with t.span("after") as sp:
            assert sp.parent_id is None


class TestDisabledAndBounds:
    def test_disabled_span_yields_none(self):
        t = Telemetry(enabled=False)
        with t.span("anything") as sp:
            assert sp is None
        assert t.spans == []

    def test_disabled_still_propagates_exceptions(self):
        t = Telemetry(enabled=False)
        with pytest.raises(KeyError):
            with t.span("anything"):
                raise KeyError("x")

    def test_span_buffer_is_bounded(self):
        t = Telemetry(max_spans=5)
        for i in range(8):
            with t.span(f"s{i}"):
                pass
        assert len(t.spans) == 5
        assert t.spans_dropped == 3
        assert [s.name for s in t.spans] == [f"s{i}" for i in range(3, 8)]
