"""Live scrape endpoint: /metrics, /healthz, request accounting."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import LiveMetricsServer


def _get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, resp.read().decode("utf-8")
    except urllib.error.HTTPError as err:
        return err.code, err.read().decode("utf-8")


@pytest.fixture()
def server(fresh_telemetry):
    with LiveMetricsServer(port=0) as srv:
        yield srv


class TestLiveMetricsServer:
    def test_metrics_is_prometheus_text(self, server, fresh_telemetry):
        fresh_telemetry.counter("pipeline.stage.cache_hit").inc(
            stage="segment")
        status, body = _get(server.url + "/metrics")
        assert status == 200
        assert ('pipeline_stage_cache_hit_total{stage="segment"} 1'
                in body)

    def test_healthz_ok_when_slos_met(self, server, fresh_telemetry):
        fresh_telemetry.gauge("query.coverage_fraction").set(1.0)
        status, body = _get(server.url + "/healthz")
        assert status == 200
        doc = json.loads(body)
        assert doc["status"] == "ok"
        assert {s["name"] for s in doc["slos"]} >= {"round-latency-p99",
                                                    "coverage-fraction"}

    def test_healthz_degraded_on_breach(self, server, fresh_telemetry):
        fresh_telemetry.gauge("query.coverage_fraction").set(0.5)
        status, body = _get(server.url + "/healthz")
        assert status == 503
        assert json.loads(body)["status"] == "degraded"

    def test_unknown_path_is_404(self, server):
        status, _ = _get(server.url + "/nope")
        assert status == 404

    def test_requests_counted_with_bounded_paths(self, server,
                                                 fresh_telemetry):
        _get(server.url + "/metrics")
        _get(server.url + "/healthz")
        _get(server.url + "/a")
        _get(server.url + "/b")  # both land in the 'other' bucket
        c = fresh_telemetry.counter("obs.live.requests")
        assert c.value(path="/metrics") == 1
        assert c.value(path="/healthz") == 1
        assert c.value(path="other") == 2

    def test_serves_current_registry_after_swap(self, server):
        from repro.obs import Telemetry, set_telemetry

        other = Telemetry()
        other.counter("pipeline.stage.cache_hit").inc(stage="late")
        previous = set_telemetry(other)
        try:
            _, body = _get(server.url + "/metrics")
        finally:
            set_telemetry(previous)
        assert 'stage="late"' in body

    def test_stop_is_idempotent(self, fresh_telemetry):
        srv = LiveMetricsServer(port=0).start()
        port = srv.port
        assert port != 0
        srv.stop()
        srv.stop()
        with pytest.raises(OSError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=1)


class TestClientDisconnect:
    """A client hanging up mid-scrape must be counted, not raised."""

    def _handler(self, telemetry, wfile):
        from repro.obs.live import _Handler

        handler = object.__new__(_Handler)
        handler.requestline = "GET /metrics HTTP/1.1"
        handler.request_version = "HTTP/1.1"
        handler.command = "GET"
        handler.client_address = ("127.0.0.1", 1)
        handler.close_connection = False
        handler.wfile = wfile

        class _Owner:
            slos = ()

            def resolve_telemetry(self):
                return telemetry

        class _Server:
            owner = _Owner()

        handler.server = _Server()
        return handler

    def test_broken_pipe_is_swallowed_and_counted(self, fresh_telemetry):
        class _DeadPipe:
            def write(self, data):
                raise BrokenPipeError("client went away")

            def flush(self):
                pass

        handler = self._handler(fresh_telemetry, _DeadPipe())
        handler._reply(200, "text/plain", b"payload")  # must not raise
        counter = fresh_telemetry.counter("obs.live.client_disconnects")
        assert counter.total() == 1
        assert handler.close_connection

    def test_healthy_pipe_writes_full_response(self, fresh_telemetry):
        import io

        buffer = io.BytesIO()
        handler = self._handler(fresh_telemetry, buffer)
        handler._reply(200, "text/plain", b"payload")
        raw = buffer.getvalue()
        assert raw.startswith(b"HTTP/") and b" 200 OK" in raw
        assert raw.endswith(b"payload")
        counter = fresh_telemetry.counter("obs.live.client_disconnects")
        assert counter.total() == 0
