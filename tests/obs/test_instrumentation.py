"""The instrumented hot paths actually record what they claim to.

Each test drives a real subsystem (pipeline runner, artifact store,
Gram cache, retry policy, task batches, the RF loop) and asserts on the
telemetry it left behind — counters mirror the pre-existing ad-hoc
stats, spans carry the right attributes, warning events fire.
"""

import numpy as np
import pytest

from repro.core import MILRetrievalEngine, OracleUser, RetrievalSession
from repro.errors import RetryableError
from repro.eval import build_artifacts
from repro.pipeline import DiskArtifactStore
from repro.reliability import RetryPolicy, run_tasks
from repro.sim import tunnel
from repro.svm.gram_cache import GramCache
from repro.svm.kernels import RBFKernel
from tests.core.conftest import make_toy


def _sim():
    return tunnel(n_frames=300, seed=5, n_wall_crashes=1,
                  n_sudden_stops=1)


class TestPipelineCounters:
    def test_cold_then_warm_run_counters(self, fresh_telemetry, tmp_path):
        t = fresh_telemetry
        store = DiskArtifactStore(tmp_path / "store")
        build_artifacts(_sim(), mode="oracle", store=store)
        misses = t.counter("pipeline.stage.cache_miss").total()
        assert misses >= 1
        assert t.counter("pipeline.stage.cache_hit").total() == 0

        build_artifacts(_sim(), mode="oracle", store=store)
        # The warm run replays every cacheable stage, computing none.
        assert t.counter("pipeline.stage.cache_hit").total() == misses
        assert t.counter("pipeline.stage.cache_miss").total() == misses

    def test_stage_spans_nest_under_pipeline_run(self, fresh_telemetry):
        t = fresh_telemetry
        build_artifacts(_sim(), mode="oracle")
        by_name = {}
        for sp in t.spans:
            by_name.setdefault(sp.name, []).append(sp)
        (run,) = by_name["pipeline.run"]
        stages = by_name["pipeline.stage"]
        assert stages and all(s.parent_id == run.span_id for s in stages)
        assert all("stage" in s.attrs for s in stages)
        assert run.attrs["mode"] == "oracle"


class TestStoreQuarantine:
    def test_quarantine_counts_and_warns(self, fresh_telemetry, tmp_path):
        t = fresh_telemetry
        store = DiskArtifactStore(tmp_path / "store")
        build_artifacts(_sim(), mode="oracle", store=store)
        key = store.keys()[0]
        store._blob(key).write_bytes(b"")
        assert store.has(key) is False
        assert t.counter("store.quarantined").value(
            reason="size-mismatch") == 1
        warning = [e for e in t.events
                   if e["name"] == "store.quarantined"]
        assert warning and warning[0]["level"] == "warning"
        assert warning[0]["key"] == key
        assert warning[0]["reason"] == "size-mismatch"


class TestGramCacheCounters:
    def test_reuse_mirrors_hit_miss_stats(self, fresh_telemetry):
        t = fresh_telemetry
        x = np.random.default_rng(0).normal(size=(40, 7))
        cache = GramCache(x)
        kernel = RBFKernel(0.5)
        cache.ensure(kernel, [1, 2, 3], np.array([1, 2, 3]))
        ids = [1, 2, 3, 8, 9]
        cache.ensure(kernel, ids, np.asarray(ids))
        assert t.counter("svm.gram.columns_computed").total() \
            == cache.misses == 5
        assert t.counter("svm.gram.columns_reused").total() \
            == cache.hits == 3


class TestRetryPolicyClock:
    def test_injected_clock_measures_backoff(self, fresh_telemetry):
        t = fresh_telemetry
        ticks = iter(0.5 * n for n in range(1, 100))
        policy = RetryPolicy(max_attempts=3, base_delay=1.0, jitter=0.0,
                             clock=lambda: next(ticks))
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise RetryableError("transient")
            return "ok"

        assert policy.run(flaky, sleep=lambda s: None) == "ok"
        assert t.counter("reliability.task.retries").value(
            reason="RetryableError") == 2
        # Each retry "slept" one 0.5s clock step -> 1000ms total.
        series = t.histogram(
            "reliability.retry.backoff_ms").snapshot()["series"]
        assert series[0]["count"] == 1
        assert series[0]["sum"] == pytest.approx(1000.0)

    def test_clock_excluded_from_policy_identity(self):
        default = RetryPolicy(max_attempts=2)
        injected = RetryPolicy(max_attempts=2, clock=lambda: 0.0)
        assert default == injected
        assert hash(default) == hash(injected)

    def test_no_retry_records_no_backoff(self, fresh_telemetry):
        RetryPolicy(max_attempts=1).run(lambda: 1)
        series = fresh_telemetry.histogram(
            "reliability.retry.backoff_ms").snapshot()["series"]
        assert series == []


class TestBatchCounters:
    def test_serial_retries_and_failures_counted(self, fresh_telemetry):
        t = fresh_telemetry
        retry = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)

        def fn(task):
            if task == "bad":
                raise RetryableError("always")
            return task

        batch = run_tasks(fn, ["ok", "bad"], max_workers=1, retry=retry,
                          strict=False)
        assert batch.failed_indices == [1]
        assert t.counter("reliability.task.retries").value(
            reason="RetryableError") == 1
        assert t.counter("reliability.task.failures").value(
            reason="RetryableError") == 1

    def test_batch_span_records_outcome(self, fresh_telemetry):
        run_tasks(lambda x: x, [1, 2, 3], max_workers=1)
        (sp,) = [s for s in fresh_telemetry.spans
                 if s.name == "reliability.batch"]
        assert sp.attrs["tasks"] == 3
        assert sp.attrs["failed"] == 0


class TestFeedbackLoopMetrics:
    def test_rounds_record_latency_and_ranking_size(self, fresh_telemetry):
        t = fresh_telemetry
        ds, gt = make_toy()
        session = RetrievalSession(MILRetrievalEngine(ds), OracleUser(gt),
                                   top_k=10)
        session.run(2)
        series = t.histogram("rf.round.latency_ms").snapshot()["series"]
        assert series[0]["count"] == 2
        assert t.gauge("rf.round.ranking_size").value() == 10
        rounds = [s for s in t.spans if s.name == "rf.round"]
        assert [s.attrs["round"] for s in rounds] == [0, 1]
        assert all(s.attrs["returned"] == 10 for s in rounds)
