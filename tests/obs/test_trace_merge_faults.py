"""``merge_worker_traces`` under deterministic fault schedules.

Worker sidecars are the one trace artifact produced outside the parent
process, so they inherit every worker failure mode: a killed worker
leaves a torn final line, a worker that never recorded leaves no sidecar
at all, several workers interleave their pids into the same directory.
The merge must fold everything parseable in and drop exactly the torn
tails — the schedules here are seeded through
:class:`~repro.reliability.faults.FaultPlan` so a failing case replays
byte-for-byte.
"""

import json

from repro.obs import Telemetry, merge_worker_traces
from repro.reliability.faults import FaultPlan, FaultRule


def _sidecar(path, pid: int, n: int, *, torn: bool = False) -> list[dict]:
    """Write one worker sidecar with n span lines; optionally tear the
    last line mid-write the way a SIGKILL does."""
    records = [
        {"type": "span", "name": f"w{pid}.task", "span_id": f"{pid:x}-{i:x}",
         "parent_id": None, "pid": pid, "wall_ms": 1.0, "cpu_ms": 1.0,
         "started_at": float(i), "status": "ok",
         "attrs": {"query_id": "q1"}}
        for i in range(n)
    ]
    lines = [json.dumps(r, sort_keys=True) for r in records]
    text = "\n".join(lines) + "\n"
    if torn:
        text = text[: len(text) - len(lines[-1]) // 2 - 1]  # mid-line cut
        records = records[:-1]
    sidecar = path.with_name(f"{path.name}.worker-{pid}")
    sidecar.write_text(text, encoding="utf-8")
    return records


class TestMergeWorkerTraces:
    def test_no_sidecars_is_a_noop(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        trace.write_text('{"type": "span"}\n')
        assert merge_worker_traces(trace) == 0
        assert trace.read_text() == '{"type": "span"}\n'

    def test_interleaved_pids_all_merged_and_sidecars_removed(
            self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        trace.write_text("")
        expected = []
        for pid in (111, 222, 333):
            expected += _sidecar(trace, pid, 3)
        assert merge_worker_traces(trace) == 9
        merged = [json.loads(ln) for ln in
                  trace.read_text().strip().splitlines()]
        assert sorted(s["span_id"] for s in merged) == \
            sorted(s["span_id"] for s in expected)
        assert {s["pid"] for s in merged} == {111, 222, 333}
        assert list(tmp_path.glob("*.worker-*")) == []

    def test_torn_trailing_line_dropped_not_fatal(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        trace.write_text("")
        kept = _sidecar(trace, 555, 4, torn=True)
        assert merge_worker_traces(trace) == len(kept) == 3
        merged = [json.loads(ln) for ln in
                  trace.read_text().strip().splitlines()]
        assert all(s["pid"] == 555 for s in merged)

    def test_seeded_fault_schedule_replays(self, tmp_path):
        """Which workers die mid-write comes from a seeded FaultPlan, so
        the exact on-disk state (and hence the merge outcome) replays."""
        plan = FaultPlan([FaultRule(op="shard.load", kind="io-error",
                                    rate=0.5)], seed=7)
        outcomes = {}
        for attempt in range(2):  # identical both times
            root = tmp_path / f"run{attempt}"
            root.mkdir()
            trace = root / "trace.jsonl"
            trace.write_text("")
            survivors = 0
            for i, pid in enumerate((100, 200, 300, 400), start=1):
                torn = plan.decide("shard.load", str(pid), i, {}) is not None
                survivors += len(_sidecar(trace, pid, 2, torn=torn))
            outcomes[attempt] = (survivors, merge_worker_traces(trace))
        assert outcomes[0] == outcomes[1]
        survivors, merged = outcomes[0]
        assert merged == survivors
        assert 0 < merged < 8  # the seed tears some but not all

    def test_registry_merge_folds_worker_spans_into_trace(self, tmp_path):
        """End to end through Telemetry: a trace-writing registry merges
        sidecars (including a torn one) into its own file."""
        trace = tmp_path / "trace.jsonl"
        t = Telemetry()
        t.configure(trace_path=trace)
        with t.span("parent.work", clip="a"):
            pass
        _sidecar(trace, 999, 2)
        _sidecar(trace, 998, 2, torn=True)
        assert t.merge_worker_traces() == 3
        records = [json.loads(ln) for ln in
                   trace.read_text().strip().splitlines()]
        names = sorted(r["name"] for r in records)
        assert names == ["parent.work", "w998.task", "w999.task",
                         "w999.task"]
        t.reset()

    def test_merge_without_writer_is_safe(self):
        assert Telemetry().merge_worker_traces() == 0
