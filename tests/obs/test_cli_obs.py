"""End-to-end CLI telemetry: simulate --trace / --metrics-dump / stats.

These run full commands in-process (like tests/test_cli.py) and assert
the acceptance surface of the observability layer: the JSONL trace has
nested stage spans, the Prometheus dump names the core metrics, and the
run summary round-trips through the ``run_metrics`` table into
``repro stats``.
"""

import json

import pytest

from repro.cli import main
from repro.db import VideoDatabase
from repro.errors import StorageError


@pytest.fixture()
def db_path(tmp_path):
    return str(tmp_path / "videos.db")


def _simulate(db_path, *extra):
    return main(["simulate", "--scenario", "tunnel", "--frames", "600",
                 "--seed", "3", "--db", db_path, "--mode", "oracle",
                 *extra])


class TestTraceFlag:
    def test_trace_contains_nested_stage_spans(self, db_path, tmp_path):
        trace = tmp_path / "out.jsonl"
        assert _simulate(db_path, "--trace", str(trace)) == 0
        records = [json.loads(line)
                   for line in trace.read_text().splitlines()]
        spans = {r["span_id"]: r for r in records
                 if r["type"] == "span"}
        stages = [r for r in spans.values()
                  if r["name"] == "pipeline.stage"]
        assert stages, "expected pipeline.stage spans in the trace"
        for stage in stages:
            parent = spans[stage["parent_id"]]
            assert parent["name"] == "pipeline.run"
            assert "stage" in stage["attrs"]
        # The pipeline.run span itself sits under the CLI command span.
        run = spans[stages[0]["parent_id"]]
        assert spans[run["parent_id"]]["name"] == "cli.simulate"
        assert not list(tmp_path.glob("*.worker-*"))

    def test_metrics_dump_names_core_surface(self, db_path, tmp_path):
        prom = tmp_path / "out.prom"
        assert _simulate(db_path, "--metrics-dump", str(prom)) == 0
        text = prom.read_text()
        assert "pipeline_stage_cache_hit_total" in text
        assert "rf_round_latency_ms" in text
        assert "reliability_task_retries_total" in text


class TestRunMetricsPersistence:
    def test_summary_lands_in_run_metrics_table(self, db_path, capsys):
        assert _simulate(db_path) == 0
        assert "run metrics recorded" in capsys.readouterr().out
        with VideoDatabase(db_path) as db:
            (run,) = db.run_metrics()
        assert run["command"] == "simulate"
        assert run["run_id"].startswith("simulate-")
        assert run["summary"]["schema"] == "repro-run-summary-v1"
        names = [s["name"] for s in run["summary"]["spans"]["slowest"]]
        assert "cli.simulate" in names

    def test_record_requires_run_id(self, db_path):
        with VideoDatabase(db_path) as db:
            with pytest.raises(StorageError):
                db.record_run_metrics("", "simulate", {})


class TestStatsCommand:
    def test_stats_renders_latest_report(self, db_path, capsys):
        _simulate(db_path)
        capsys.readouterr()
        assert main(["stats", "--db", db_path]) == 0
        out = capsys.readouterr().out
        assert "== run report ==" in out
        assert "-- slowest spans --" in out
        assert "pipeline.run" in out

    def test_stats_by_run_id(self, db_path, capsys):
        _simulate(db_path)
        with VideoDatabase(db_path) as db:
            (run,) = db.run_metrics()
        capsys.readouterr()
        assert main(["stats", "--db", db_path, run["run_id"]]) == 0
        assert run["run_id"] in capsys.readouterr().out

    def test_stats_list(self, db_path, capsys):
        _simulate(db_path)
        capsys.readouterr()
        assert main(["stats", "--db", db_path, "--list"]) == 0
        out = capsys.readouterr().out
        assert "recorded run(s):" in out
        assert "command=simulate" in out

    def test_stats_unknown_run_errors(self, db_path, capsys):
        _simulate(db_path)
        capsys.readouterr()
        assert main(["stats", "--db", db_path, "no-such-run"]) == 1
        assert "no run" in capsys.readouterr().err

    def test_stats_empty_db_is_graceful(self, db_path, capsys):
        with VideoDatabase(db_path):
            pass
        assert main(["stats", "--db", db_path]) == 0
        assert "no recorded runs" in capsys.readouterr().out
