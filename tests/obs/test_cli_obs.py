"""End-to-end CLI telemetry: simulate --trace / --metrics-dump / stats.

These run full commands in-process (like tests/test_cli.py) and assert
the acceptance surface of the observability layer: the JSONL trace has
nested stage spans, the Prometheus dump names the core metrics, and the
run summary round-trips through the ``run_metrics`` table into
``repro stats``.
"""

import json

import pytest

from repro.cli import main
from repro.db import VideoDatabase
from repro.errors import StorageError


@pytest.fixture()
def db_path(tmp_path):
    return str(tmp_path / "videos.db")


def _simulate(db_path, *extra):
    return main(["simulate", "--scenario", "tunnel", "--frames", "600",
                 "--seed", "3", "--db", db_path, "--mode", "oracle",
                 *extra])


class TestTraceFlag:
    def test_trace_contains_nested_stage_spans(self, db_path, tmp_path):
        trace = tmp_path / "out.jsonl"
        assert _simulate(db_path, "--trace", str(trace)) == 0
        records = [json.loads(line)
                   for line in trace.read_text().splitlines()]
        spans = {r["span_id"]: r for r in records
                 if r["type"] == "span"}
        stages = [r for r in spans.values()
                  if r["name"] == "pipeline.stage"]
        assert stages, "expected pipeline.stage spans in the trace"
        for stage in stages:
            parent = spans[stage["parent_id"]]
            assert parent["name"] == "pipeline.run"
            assert "stage" in stage["attrs"]
        # The pipeline.run span itself sits under the CLI command span.
        run = spans[stages[0]["parent_id"]]
        assert spans[run["parent_id"]]["name"] == "cli.simulate"
        assert not list(tmp_path.glob("*.worker-*"))

    def test_metrics_dump_names_core_surface(self, db_path, tmp_path):
        prom = tmp_path / "out.prom"
        assert _simulate(db_path, "--metrics-dump", str(prom)) == 0
        text = prom.read_text()
        assert "pipeline_stage_cache_hit_total" in text
        assert "rf_round_latency_ms" in text
        assert "reliability_task_retries_total" in text


class TestRunMetricsPersistence:
    def test_summary_lands_in_run_metrics_table(self, db_path, capsys):
        assert _simulate(db_path) == 0
        assert "run metrics recorded" in capsys.readouterr().out
        with VideoDatabase(db_path) as db:
            (run,) = db.run_metrics()
        assert run["command"] == "simulate"
        assert run["run_id"].startswith("simulate-")
        assert run["summary"]["schema"] == "repro-run-summary-v1"
        names = [s["name"] for s in run["summary"]["spans"]["slowest"]]
        assert "cli.simulate" in names

    def test_record_requires_run_id(self, db_path):
        with VideoDatabase(db_path) as db:
            with pytest.raises(StorageError):
                db.record_run_metrics("", "simulate", {})


class TestStatsCommand:
    def test_stats_renders_latest_report(self, db_path, capsys):
        _simulate(db_path)
        capsys.readouterr()
        assert main(["stats", "--db", db_path]) == 0
        out = capsys.readouterr().out
        assert "== run report ==" in out
        assert "-- slowest spans --" in out
        assert "pipeline.run" in out

    def test_stats_by_run_id(self, db_path, capsys):
        _simulate(db_path)
        with VideoDatabase(db_path) as db:
            (run,) = db.run_metrics()
        capsys.readouterr()
        assert main(["stats", "--db", db_path, run["run_id"]]) == 0
        assert run["run_id"] in capsys.readouterr().out

    def test_stats_list(self, db_path, capsys):
        _simulate(db_path)
        capsys.readouterr()
        assert main(["stats", "--db", db_path, "--list"]) == 0
        out = capsys.readouterr().out
        assert "recorded run(s):" in out
        assert "command=simulate" in out

    def test_stats_unknown_run_errors(self, db_path, capsys):
        _simulate(db_path)
        capsys.readouterr()
        assert main(["stats", "--db", db_path, "no-such-run"]) == 1
        assert "no run" in capsys.readouterr().err

    def test_stats_empty_db_is_graceful(self, db_path, capsys):
        with VideoDatabase(db_path):
            pass
        assert main(["stats", "--db", db_path]) == 0
        assert "no recorded runs" in capsys.readouterr().out


class TestLiveMetricsFlag:
    def test_simulate_serves_metrics_for_the_command(self, db_path,
                                                     capsys):
        assert _simulate(db_path, "--live-metrics", "0") == 0
        out = capsys.readouterr().out
        assert "live metrics at http://127.0.0.1:" in out
        assert "/metrics" in out


class TestQuerySessionObs:
    def _query(self, db_path, *extra):
        return main(["query", "--db", db_path, "--clip", "tunnel",
                     "--top-k", "5", *extra])

    def test_query_ledgers_rounds_and_points_at_explain(self, db_path,
                                                        capsys):
        _simulate(db_path)
        capsys.readouterr()
        assert self._query(db_path) == 0
        out = capsys.readouterr().out
        assert "ledgered as session 'default:tunnel:accident'" in out
        assert "repro explain --db" in out
        with VideoDatabase(db_path) as db:
            rows = db.query_rounds(session_id="default:tunnel:accident")
        assert [r["op"] for r in rows] == ["results"]

    def test_no_ledger_flag(self, db_path, capsys):
        _simulate(db_path)
        assert self._query(db_path, "--no-ledger") == 0
        assert "ledgered as session" not in capsys.readouterr().out
        with VideoDatabase(db_path) as db:
            assert db.query_rounds() == []

    def test_profile_threshold_captures_tail(self, db_path, capsys):
        _simulate(db_path)
        capsys.readouterr()
        assert self._query(db_path, "--profile-threshold-ms",
                           "0.001") == 0
        assert "tail profile(s) captured" in capsys.readouterr().out
        with VideoDatabase(db_path) as db:
            (row,) = db.query_rounds()
        # The threshold crossing is always ledgered; stack lines only
        # appear when the round outlived at least one sampler tick.
        assert row["detail"]["profile_wall_ms"] > 0

    def test_label_ledgers_a_feed_round(self, db_path, capsys):
        _simulate(db_path)
        self._query(db_path)
        with VideoDatabase(db_path) as db:
            bag = db.query_rounds()[0]["spans"]  # noqa: F841 - warm check
        capsys.readouterr()
        assert main(["label", "--db", db_path, "--clip", "tunnel",
                     "--relevant", "0,1", "--irrelevant", "2"]) == 0
        out = capsys.readouterr().out
        assert "recorded round 0" in out
        assert "ledgered as session" in out
        with VideoDatabase(db_path) as db:
            ops = [r["op"] for r in db.query_rounds()]
        assert ops == ["results", "feed"]


class TestExplainCommand:
    def _seed_session(self, db_path):
        _simulate(db_path)
        main(["query", "--db", db_path, "--clip", "tunnel",
              "--top-k", "5"])
        main(["label", "--db", db_path, "--clip", "tunnel",
              "--relevant", "0,1"])

    def test_listing_when_no_session_named(self, db_path, capsys):
        self._seed_session(db_path)
        capsys.readouterr()
        assert main(["explain", "--db", db_path]) == 0
        out = capsys.readouterr().out
        # query and label each ran as their own CLI process stand-in,
        # so the same session id appears under two query identities.
        assert "2 ledgered session(s):" in out
        assert "default:tunnel:accident" in out

    def test_renders_round_tree_by_session_id(self, db_path, capsys):
        self._seed_session(db_path)
        capsys.readouterr()
        assert main(["explain", "--db", db_path,
                     "default:tunnel:accident"]) == 0
        out = capsys.readouterr().out
        assert "session default:tunnel:accident" in out
        assert "round 0 · results" in out
        assert "round 0 · feed" in out
        assert "query.round" in out
        assert "100.0%" in out

    def test_lookup_by_query_id_and_round_filter(self, db_path, capsys):
        self._seed_session(db_path)
        with VideoDatabase(db_path) as db:
            qid = db.query_sessions()[0]["query_id"]
        capsys.readouterr()
        assert main(["explain", "--db", db_path, qid,
                     "--round", "0"]) == 0
        out = capsys.readouterr().out
        assert f"query {qid}" in out
        assert "round 0 · results" in out

    def test_unknown_session_errors(self, db_path, capsys):
        self._seed_session(db_path)
        assert main(["explain", "--db", db_path, "nope"]) == 1
        assert "no ledgered rounds" in capsys.readouterr().err

    def test_empty_ledger_listing(self, db_path, capsys):
        with VideoDatabase(db_path):
            pass
        assert main(["explain", "--db", db_path]) == 0
        assert "no ledgered query rounds" in capsys.readouterr().out
