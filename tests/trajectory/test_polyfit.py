"""Tests for the Vandermonde least-squares fit (paper Eq. 1-2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.trajectory import fit_polynomial, vandermonde


class TestVandermonde:
    def test_shape_and_columns(self):
        x = np.array([1.0, 2.0, 3.0])
        m = vandermonde(x, 2)
        assert m.shape == (3, 3)
        assert np.allclose(m[:, 0], 1.0)
        assert np.allclose(m[:, 1], x)
        assert np.allclose(m[:, 2], x**2)

    def test_degree_zero(self):
        m = vandermonde(np.array([5.0, 7.0]), 0)
        assert m.shape == (2, 1)
        assert np.allclose(m, 1.0)

    def test_negative_degree_rejected(self):
        with pytest.raises(ConfigurationError):
            vandermonde(np.array([1.0]), -1)


class TestFitPolynomial:
    def test_exact_line(self):
        x = np.linspace(0, 10, 20)
        y = 3.0 + 2.0 * x
        coeffs, rms = fit_polynomial(x, y, 1)
        assert coeffs == pytest.approx([3.0, 2.0])
        assert rms < 1e-9

    def test_exact_cubic(self):
        x = np.linspace(-2, 2, 30)
        y = 1.0 - x + 0.5 * x**2 + 2.0 * x**3
        coeffs, rms = fit_polynomial(x, y, 3)
        assert coeffs == pytest.approx([1.0, -1.0, 0.5, 2.0])
        assert rms < 1e-8

    def test_overparameterized_degree_capped(self):
        x = np.array([0.0, 1.0])
        y = np.array([1.0, 3.0])
        coeffs, rms = fit_polynomial(x, y, 5)
        assert len(coeffs) == 6
        # Degrees beyond the data are zero-padded, and the fit is exact.
        assert coeffs[2:] == pytest.approx(np.zeros(4))
        assert rms < 1e-9

    def test_noise_reduces_with_least_squares(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 5, 100)
        y = 2.0 * x + rng.normal(0, 0.5, 100)
        coeffs, _ = fit_polynomial(x, y, 1)
        assert coeffs[1] == pytest.approx(2.0, abs=0.1)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_polynomial(np.zeros(3), np.zeros(4), 1)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_polynomial(np.array([]), np.array([]), 1)

    @given(
        coeffs=st.lists(st.floats(-3, 3), min_size=1, max_size=5),
        n=st.integers(6, 40),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_recovers_any_polynomial(self, coeffs, n):
        """Fitting noise-free samples of a polynomial recovers it exactly."""
        x = np.linspace(-1, 1, n)
        truth = np.asarray(coeffs)
        y = vandermonde(x, len(truth) - 1) @ truth
        fitted, rms = fit_polynomial(x, y, len(truth) - 1)
        assert rms < 1e-6
        assert np.allclose(fitted, truth, atol=1e-5)
