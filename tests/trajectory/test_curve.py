"""Tests for PolynomialCurve and TrajectoryModel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.trajectory import PolynomialCurve, TrajectoryModel


class TestPolynomialCurve:
    def test_fit_and_evaluate(self):
        x = np.linspace(0, 10, 30)
        y = 1.0 + 0.5 * x - 0.2 * x**2
        curve = PolynomialCurve.fit(x, y, 2)
        assert curve(np.array([2.0]))[0] == pytest.approx(1.0 + 1.0 - 0.8)
        assert curve(5.0) == pytest.approx(1.0 + 2.5 - 5.0)

    def test_derivative_of_quadratic(self):
        x = np.linspace(-3, 3, 40)
        y = 2.0 + 3.0 * x + 4.0 * x**2
        deriv = PolynomialCurve.fit(x, y, 2).derivative()
        for point in (-2.0, 0.0, 1.5):
            assert deriv(point) == pytest.approx(3.0 + 8.0 * point, rel=1e-6)

    def test_derivative_of_constant_is_zero(self):
        curve = PolynomialCurve([5.0])
        deriv = curve.derivative()
        assert deriv(123.0) == pytest.approx(0.0)

    def test_large_frame_numbers_stay_conditioned(self):
        """Frame indices in the thousands must not blow up a degree-4 fit."""
        t = np.arange(2000, 2100, dtype=float)
        y = 100.0 + 0.01 * (t - 2050) ** 2
        curve = PolynomialCurve.fit(t, y, 4)
        err = np.abs(curve(t) - y)
        assert err.max() < 1e-6 * np.abs(y).max()

    def test_rejects_empty_coefficients(self):
        with pytest.raises(ConfigurationError):
            PolynomialCurve(np.array([]))

    def test_rejects_zero_scale(self):
        with pytest.raises(ConfigurationError):
            PolynomialCurve([1.0], scale=0.0)

    @given(
        a=st.floats(-5, 5), b=st.floats(-5, 5), c=st.floats(-5, 5),
        x0=st.floats(-100, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_derivative_matches_finite_difference(self, a, b, c, x0):
        x = np.linspace(-10, 10, 50)
        y = a + b * x + c * x**2
        curve = PolynomialCurve.fit(x, y, 2)
        deriv = curve.derivative()
        h = 1e-5
        numeric = (curve(x0 + h) - curve(x0 - h)) / (2 * h)
        assert deriv(x0) == pytest.approx(numeric, rel=1e-3, abs=1e-4)


class TestTrajectoryModel:
    def _straight(self, n=40, v=(2.0, 0.5), start=(10.0, 20.0)):
        frames = np.arange(n, dtype=float)
        points = np.array(start) + frames[:, None] * np.array(v)
        return frames, points

    def test_positions_match_straight_motion(self):
        frames, points = self._straight()
        model = TrajectoryModel(frames, points, degree=4)
        assert model.rms_error < 1e-6
        assert model.position(10.0) == pytest.approx(points[10], abs=1e-6)

    def test_velocity_of_straight_motion(self):
        frames, points = self._straight(v=(3.0, -1.0))
        model = TrajectoryModel(frames, points, degree=3)
        assert model.velocity(20.0) == pytest.approx([3.0, -1.0], abs=1e-6)
        assert model.speed(20.0) == pytest.approx(np.hypot(3, 1), abs=1e-6)

    def test_models_a_stop(self):
        """Position holds and velocity drops to ~0 after a braking event."""
        frames = np.arange(60, dtype=float)
        x = np.where(frames < 30, 3.0 * frames, 90.0)
        points = np.column_stack([x, np.full(60, 50.0)])
        model = TrajectoryModel(frames, points, degree=6)
        assert abs(model.velocity(50.0)[0]) < 0.7
        assert model.velocity(10.0)[0] > 2.0

    def test_paper_figure2_shape(self):
        """4th-degree fit of a gently curving trail, like paper Figure 2."""
        frames = np.linspace(0, 50, 26)
        points = np.column_stack([
            frames * 3.0,
            60 + 0.05 * (frames - 25) ** 2,
        ])
        model = TrajectoryModel(frames, points, degree=4)
        assert model.rms_error < 1e-6

    def test_from_track(self):
        from repro.tracking import Track
        from repro.vision.blobs import Blob

        track = Track(0)
        for f in range(10):
            blob = Blob(cx=2.0 * f, cy=30.0, x0=0, y0=0, x1=4, y1=4,
                        area=16, mean_intensity=100.0)
            track.add(f, blob)
        model = TrajectoryModel.from_track(track, degree=2)
        assert model.velocity(5.0) == pytest.approx([2.0, 0.0], abs=1e-6)

    def test_rejects_single_point(self):
        with pytest.raises(ConfigurationError):
            TrajectoryModel(np.array([0.0]), np.array([[1.0, 2.0]]))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            TrajectoryModel(np.arange(3), np.zeros((4, 2)))

    def test_rejects_degree_zero(self):
        with pytest.raises(ConfigurationError):
            TrajectoryModel(np.arange(4), np.zeros((4, 2)), degree=0)

    def test_noise_is_smoothed(self):
        rng = np.random.default_rng(0)
        frames, points = self._straight(n=60)
        noisy = points + rng.normal(0, 1.0, points.shape)
        model = TrajectoryModel(frames, noisy, degree=4)
        recon = model.positions(frames)
        # The fitted curve should be closer to the truth than the noise.
        err_fit = np.linalg.norm(recon - points, axis=1).mean()
        err_noise = np.linalg.norm(noisy - points, axis=1).mean()
        assert err_fit < err_noise
