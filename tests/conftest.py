"""Shared fixtures: small deterministic scenarios reused across test files."""

import numpy as np
import pytest

from repro.sim import intersection, tunnel


@pytest.fixture(scope="session")
def small_tunnel():
    """A short tunnel clip with a couple of incidents (session-cached)."""
    return tunnel(n_frames=500, seed=3, spawn_interval=(60.0, 90.0),
                  n_wall_crashes=2, n_sudden_stops=1)


@pytest.fixture(scope="session")
def small_intersection():
    """A short intersection clip with two collisions (session-cached)."""
    return intersection(n_frames=400, seed=4, n_collisions=2)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
