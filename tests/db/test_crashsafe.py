"""Crash-safe catalog: pragmas, quick_check, verify()/repair.

The catalog must (a) open in WAL mode with a busy timeout so concurrent
ingest and query sessions contend gracefully, (b) refuse to serve a
corrupt file at open time with an actionable error, and (c) be able to
diagnose and repair torn datasets — from the content-addressed artifact
store when provenance exists, by pruning otherwise.
"""

import sqlite3

import numpy as np
import pytest

from repro.db import ClipRecord, VideoDatabase
from repro.errors import StorageError
from repro.pipeline import MemoryArtifactStore

from tests.core.test_sharded import _clip

PAGE = 4096


def _stored(db, clip_id="a", n_bags=8, seed=1):
    dataset = _clip(clip_id, n_bags, seed=seed)
    db.add_clip(ClipRecord(clip_id=clip_id, fps=25.0, n_frames=n_bags * 20,
                           width=320, height=240))
    db.add_dataset(dataset)
    return dataset


def _corrupt_leaf_page(path) -> None:
    """Plant free-space corruption in one table-leaf page.

    Overwrites the first-freeblock pointer (page header bytes 1-2) of a
    leaf b-tree page past the schema, which ``PRAGMA quick_check``
    reports as problem rows without the pragma itself erroring out.
    """
    data = bytearray(path.read_bytes())
    for page_start in range(PAGE * 4, len(data), PAGE):
        if data[page_start] == 0x0D:  # table leaf page
            data[page_start + 1 : page_start + 3] = b"\x0f\xff"
            path.write_bytes(bytes(data))
            return
    raise AssertionError("no leaf page found to corrupt")


def _filler(path, rows=200):
    conn = sqlite3.connect(path)
    conn.execute("CREATE TABLE filler (id INTEGER PRIMARY KEY, blob BLOB)")
    conn.executemany("INSERT INTO filler (blob) VALUES (?)",
                     [(b"x" * 1024,) for _ in range(rows)])
    conn.commit()
    conn.close()


class TestPragmas:
    def test_file_backed_db_runs_wal_with_busy_timeout(self, tmp_path):
        db = VideoDatabase(tmp_path / "v.db")
        assert db._conn.execute(
            "PRAGMA journal_mode").fetchone()[0] == "wal"
        assert db._conn.execute(
            "PRAGMA busy_timeout").fetchone()[0] == 5000
        # synchronous=NORMAL == 1
        assert db._conn.execute("PRAGMA synchronous").fetchone()[0] == 1
        db.close()

    def test_busy_timeout_configurable(self, tmp_path):
        db = VideoDatabase(tmp_path / "v.db", busy_timeout_ms=250)
        assert db._conn.execute(
            "PRAGMA busy_timeout").fetchone()[0] == 250
        db.close()

    def test_memory_db_skips_wal(self):
        db = VideoDatabase()
        assert db._conn.execute(
            "PRAGMA journal_mode").fetchone()[0] == "memory"


class TestQuickCheck:
    def test_corrupt_file_rejected_at_open(self, tmp_path):
        path = tmp_path / "v.db"
        VideoDatabase(path).close()
        _filler(path)
        _corrupt_leaf_page(path)
        with pytest.raises(StorageError, match="quick_check"):
            VideoDatabase(path)
        # The error points at the repair tool.
        with pytest.raises(StorageError, match="verify-db"):
            VideoDatabase(path)

    def test_quick_check_off_allows_inspection(self, tmp_path):
        path = tmp_path / "v.db"
        VideoDatabase(path).close()
        _filler(path)
        _corrupt_leaf_page(path)
        db = VideoDatabase(path, quick_check=False)
        report = db.verify()
        assert report["quick_check"] != "ok"
        assert not report["healthy"]
        db.close()

    def test_healthy_file_opens_clean(self, tmp_path):
        path = tmp_path / "v.db"
        VideoDatabase(path).close()
        db = VideoDatabase(path)
        assert db.verify()["healthy"]
        db.close()


class TestVerifyRepair:
    def test_healthy_dataset_reports_clean(self):
        db = VideoDatabase()
        _stored(db)
        report = db.verify()
        assert report == {"quick_check": "ok", "datasets_checked": 1,
                          "issues": [], "repaired": 0, "healthy": True}

    def test_missing_bundle_load_raises_storage_error(self):
        # A missing bundle must surface as StorageError — the shard
        # boundary classifies that into ShardUnavailableError so
        # degraded sessions quarantine the shard instead of crashing
        # on a raw KeyError.
        db = VideoDatabase()
        _stored(db)
        db.arrays.delete("a/dataset-accident")
        with pytest.raises(StorageError, match="missing 16 instance"):
            db.dataset("a", "accident")

    def test_missing_bundle_detected_and_pruned(self):
        db = VideoDatabase()
        _stored(db)
        db.arrays.delete("a/dataset-accident")
        report = db.verify()
        assert [i["problem"] for i in report["issues"]] == ["missing-bundle"]
        assert report["issues"][0]["action"] == "reported"
        assert not report["healthy"]

        report = db.verify(repair=True)
        assert report["repaired"] == 1
        assert report["issues"][0]["action"] == "pruned"
        # Pruning restores loadability at the cost of the lost rows.
        stored = db.dataset("a", "accident")
        assert stored.n_instances == 0
        assert db.verify()["healthy"]

    def test_torn_bundle_pruned_to_intersection(self):
        db = VideoDatabase()
        dataset = _stored(db)
        key = "a/dataset-accident"
        bundle = db.arrays.load(key)
        db.arrays.save(key, {  # drop the last 3 matrices: a torn write
            "instance_ids": bundle["instance_ids"][:-3],
            "matrices": bundle["matrices"][:-3],
        })
        report = db.verify(repair=True)
        assert report["issues"][0]["problem"] == "catalog-bundle-mismatch"
        assert report["issues"][0]["missing_matrices"] == 3
        assert report["issues"][0]["action"] == "pruned"
        stored = db.dataset("a", "accident")
        assert stored.n_instances == dataset.n_instances - 3
        assert db.verify()["healthy"]

    def test_rebuild_from_artifact_store_restores_exactly(self):
        db = VideoDatabase()
        dataset = _stored(db)
        store = MemoryArtifactStore()
        store.save("windows-key", dataset,
                   meta={"clip_id": "a", "stage": "windows"})
        db.record_artifact_entries(store.entries())
        db.arrays.delete("a/dataset-accident")

        report = db.verify(repair=True, artifact_store=store)
        assert report["issues"][0]["action"] == "rebuilt-from-artifacts"
        stored = db.dataset("a", "accident")
        assert stored.n_instances == dataset.n_instances
        np.testing.assert_array_equal(stored.instance_matrix(),
                                      dataset.instance_matrix())
        assert db.verify()["healthy"]

    def test_orphan_matrices_detected(self):
        db = VideoDatabase()
        _stored(db)
        key = "a/dataset-accident"
        bundle = db.arrays.load(key)
        db.arrays.save(key, {
            "instance_ids": np.concatenate(
                [bundle["instance_ids"], [9999]]),
            "matrices": np.concatenate(
                [bundle["matrices"], bundle["matrices"][:1]]),
        })
        report = db.verify()
        assert report["issues"][0]["orphan_matrices"] == 1
        db.verify(repair=True)
        assert db.verify()["healthy"]
        assert 9999 not in {
            int(i) for i in db.arrays.load(key)["instance_ids"]}
