"""Tests for the SQLite video database catalog."""

import numpy as np
import pytest

from repro.core.bags import MILDataset
from repro.db import ClipRecord, LabelRecord, VideoDatabase
from repro.errors import StorageError
from repro.events import AccidentModel, build_dataset, extract_series
from repro.tracking.oracle import tracks_from_simulation


@pytest.fixture(scope="module")
def ingested(small_tunnel):
    db = VideoDatabase()
    tracks = tracks_from_simulation(small_tunnel)
    dataset = build_dataset(extract_series(tracks), AccidentModel(),
                            clip_id=small_tunnel.name)
    db.ingest_simulation(small_tunnel, tracks, dataset,
                         start_time="2026-07-06T08:00:00")
    return db, tracks, dataset


class TestClips:
    def test_roundtrip(self):
        db = VideoDatabase()
        record = ClipRecord(clip_id="c1", location="tunnel", camera="cam-1",
                            start_time="2026-07-06T08:00:00", fps=25.0,
                            n_frames=100, width=320, height=240,
                            extra={"k": 1})
        db.add_clip(record)
        assert db.clip("c1") == record

    def test_missing_clip_raises(self):
        with pytest.raises(StorageError, match="no clip"):
            VideoDatabase().clip("ghost")

    def test_metadata_filters(self):
        db = VideoDatabase()
        db.add_clip(ClipRecord(clip_id="a", location="tunnel",
                               camera="cam-1", fps=25, n_frames=1,
                               width=1, height=1))
        db.add_clip(ClipRecord(clip_id="b", location="intersection",
                               camera="cam-2", fps=25, n_frames=1,
                               width=1, height=1))
        assert [c.clip_id for c in db.clips()] == ["a", "b"]
        assert [c.clip_id for c in db.clips(location="tunnel")] == ["a"]
        assert [c.clip_id for c in db.clips(camera="cam-2")] == ["b"]
        assert db.clips(location="tunnel", camera="cam-2") == []

    def test_clip_id_required(self):
        with pytest.raises(StorageError):
            ClipRecord(clip_id="", fps=25)


class TestTracks:
    def test_records_and_points_stored(self, ingested, small_tunnel):
        db, tracks, _ = ingested
        records = db.track_records(small_tunnel.name)
        assert len(records) == len(tracks)
        frames, points = db.track_points(small_tunnel.name,
                                         tracks[0].track_id)
        assert np.array_equal(frames, tracks[0].frame_array())
        assert np.array_equal(points, tracks[0].point_array())

    def test_polynomial_model_reconstructs_positions(self, ingested,
                                                     small_tunnel):
        """The stored compact model (paper Section 3.2) approximates the
        raw trail."""
        db, tracks, _ = ingested
        record = db.track_records(small_tunnel.name)[0]
        frames, points = db.track_points(small_tunnel.name, record.track_id)
        mid = len(frames) // 2
        approx = record.position_at(frames[mid])
        assert np.linalg.norm(approx - points[mid]) < 8.0

    def test_tracks_require_existing_clip(self, small_tunnel):
        db = VideoDatabase()
        tracks = tracks_from_simulation(small_tunnel)
        with pytest.raises(StorageError):
            db.add_tracks("ghost", tracks)

    def test_vehicle_classes_stored(self, small_tunnel):
        db = VideoDatabase()
        db.add_clip(ClipRecord(clip_id=small_tunnel.name, fps=25,
                               n_frames=1, width=1, height=1))
        tracks = tracks_from_simulation(small_tunnel)[:2]
        db.add_tracks(small_tunnel.name, tracks,
                      vehicle_classes={tracks[0].track_id: "truck"})
        records = {r.track_id: r for r in
                   db.track_records(small_tunnel.name)}
        assert records[tracks[0].track_id].vehicle_class == "truck"
        assert records[tracks[1].track_id].vehicle_class == ""


class TestDatasets:
    def test_roundtrip_preserves_structure(self, ingested, small_tunnel):
        db, _, dataset = ingested
        loaded = db.dataset(small_tunnel.name, "accident")
        assert isinstance(loaded, MILDataset)
        assert len(loaded) == len(dataset)
        assert loaded.n_instances == dataset.n_instances
        assert loaded.feature_names == dataset.feature_names
        for orig, back in zip(dataset.bags, loaded.bags):
            assert orig.frame_range == back.frame_range
            for oi, bi in zip(orig.instances, back.instances):
                assert oi.track_id == bi.track_id
                assert np.allclose(oi.matrix, bi.matrix)

    def test_missing_dataset_raises(self, ingested):
        db, _, _ = ingested
        with pytest.raises(StorageError, match="no dataset"):
            db.dataset("tunnel", "u_turn")

    def test_events_for(self, ingested, small_tunnel):
        db, _, _ = ingested
        assert db.events_for(small_tunnel.name) == ["accident"]


class TestLabels:
    def test_roundtrip_and_filters(self, ingested, small_tunnel):
        db, _, _ = ingested
        labels = [
            LabelRecord(small_tunnel.name, "accident", 0, "alice", 0, True),
            LabelRecord(small_tunnel.name, "accident", 1, "alice", 0, False),
            LabelRecord(small_tunnel.name, "accident", 0, "bob", 0, False),
        ]
        db.add_labels(labels)
        alice = db.labels(small_tunnel.name, "accident", "alice")
        assert len(alice) == 2
        assert db.labels(small_tunnel.name, "accident", "bob")[0].relevant \
            is False

    def test_accumulated_latest_round_wins(self, ingested, small_tunnel):
        db, _, _ = ingested
        db.add_labels([
            LabelRecord(small_tunnel.name, "accident", 5, "carol", 0, False),
            LabelRecord(small_tunnel.name, "accident", 5, "carol", 1, True),
        ])
        acc = db.accumulated_labels(small_tunnel.name, "accident", "carol")
        assert acc[5] is True


class TestFilePersistence:
    def test_sqlite_file_reopen(self, tmp_path, small_tunnel):
        path = tmp_path / "videos.db"
        with VideoDatabase(path) as db:
            tracks = tracks_from_simulation(small_tunnel)
            dataset = build_dataset(extract_series(tracks), AccidentModel(),
                                    clip_id=small_tunnel.name)
            db.ingest_simulation(small_tunnel, tracks, dataset)
        with VideoDatabase(path) as fresh:
            assert fresh.clip(small_tunnel.name).n_frames \
                == small_tunnel.n_frames
            loaded = fresh.dataset(small_tunnel.name, "accident")
            assert loaded.n_instances > 0
