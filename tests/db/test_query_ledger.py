"""Quality ledger: per-round persistence, filtering, session rollups,
and the never-fail-a-query resilience contract."""

import pytest

from repro.db import SemanticQuerySession, VideoDatabase
from repro.errors import StorageError
from repro.eval import build_artifacts
from repro.obs import Telemetry, set_telemetry
from repro.reliability.faults import FaultInjector, FaultPlan, FaultRule


@pytest.fixture(autouse=True)
def fresh_telemetry():
    telemetry = Telemetry()
    previous = set_telemetry(telemetry)
    yield telemetry
    set_telemetry(previous)


@pytest.fixture()
def tunnel_db(small_tunnel, tmp_path):
    db = VideoDatabase(tmp_path / "repro.db")
    artifacts = build_artifacts(small_tunnel, mode="oracle")
    db.ingest_simulation(small_tunnel, artifacts.tracks, artifacts.dataset)
    return db


class TestLedgerStorage:
    def test_record_and_filter(self, tmp_path):
        db = VideoDatabase(tmp_path / "x.db")
        for i in range(3):
            db.record_query_round(
                session_id="u:c:e", query_id="q1", corpus_id="c",
                event="e", round_index=i, op="results", latency_ms=float(i),
                detail={"op": "results"}, spans=[{"name": "query.round"}])
        db.record_query_round(
            session_id="u2:c:e", query_id="q2", corpus_id="c",
            event="e", round_index=0, op="feed")
        assert len(db.query_rounds()) == 4
        mine = db.query_rounds(session_id="u:c:e")
        assert [r["round_index"] for r in mine] == [0, 1, 2]
        assert mine[1]["detail"] == {"op": "results"}
        assert mine[1]["spans"] == [{"name": "query.round"}]
        assert db.query_rounds(query_id="q2")[0]["op"] == "feed"
        assert len(db.query_rounds(session_id="u:c:e", round_index=2)) == 1

    def test_sessions_rollup(self, tmp_path):
        db = VideoDatabase(tmp_path / "x.db")
        for i in range(2):
            db.record_query_round(
                session_id="u:c:e", query_id="q1", corpus_id="c",
                event="e", round_index=i, op="results")
        sessions = db.query_sessions()
        assert len(sessions) == 1
        assert sessions[0]["rounds"] == 2
        assert sessions[0]["last_round"] == 1
        assert sessions[0]["session_id"] == "u:c:e"

    def test_empty_identity_rejected(self, tmp_path):
        db = VideoDatabase(tmp_path / "x.db")
        with pytest.raises(StorageError, match="non-empty"):
            db.record_query_round(session_id="", query_id="q",
                                  corpus_id="c", event="e",
                                  round_index=0, op="results")

    def test_ledger_survives_reopen(self, tmp_path):
        path = tmp_path / "x.db"
        VideoDatabase(path).record_query_round(
            session_id="u:c:e", query_id="q1", corpus_id="c", event="e",
            round_index=0, op="results")
        assert len(VideoDatabase(path).query_rounds()) == 1


class TestSessionLedgerIntegration:
    def test_rounds_are_ledgered_with_one_query_id(self, tunnel_db,
                                                   small_tunnel):
        session = SemanticQuerySession(tunnel_db, small_tunnel.name,
                                       "accident", top_k=5)
        ids = session.results()
        session.feed({b: (i % 2 == 0) for i, b in enumerate(ids)})
        session.results()
        rows = tunnel_db.query_rounds(session_id=session.session_id)
        assert [(r["round_index"], r["op"]) for r in rows] == \
            [(0, "results"), (0, "feed"), (1, "results")]
        assert {r["query_id"] for r in rows} == {session.query_id}
        for row in rows:
            span_qids = {s.get("attrs", {}).get("query_id")
                         for s in row["spans"]}
            assert span_qids == {session.query_id}
            assert row["latency_ms"] > 0
            assert row["detail"]["cache"].keys() == \
                {"gram_columns_reused", "gram_columns_computed",
                 "hit_rate"}

    def test_resumed_session_extends_same_ledger_session(self, tunnel_db,
                                                         small_tunnel):
        first = SemanticQuerySession(tunnel_db, small_tunnel.name,
                                     "accident", top_k=5)
        first.feed({b: True for b in first.results()})
        resumed = SemanticQuerySession(tunnel_db, small_tunnel.name,
                                       "accident", top_k=5)
        resumed.results()
        rows = tunnel_db.query_rounds(session_id=first.session_id)
        # Same session id, two distinct query (object) identities.
        assert resumed.session_id == first.session_id
        assert resumed.query_id != first.query_id
        assert {r["query_id"] for r in rows} == \
            {first.query_id, resumed.query_id}
        assert rows[-1]["round_index"] == 1  # resume continued the count

    def test_ledger_opt_out(self, tunnel_db, small_tunnel, fresh_telemetry):
        session = SemanticQuerySession(tunnel_db, small_tunnel.name,
                                       "accident", top_k=5, ledger=False)
        session.results()
        assert tunnel_db.query_rounds() == []
        # The latency histogram still observes — only the ledger is off.
        h = fresh_telemetry.histogram("query.round.latency_ms")
        assert sum(p.count for _, p in h.series()) == 1

    def test_disabled_telemetry_skips_ledger_entirely(self, tunnel_db,
                                                      small_tunnel):
        set_telemetry(Telemetry(enabled=False))
        session = SemanticQuerySession(tunnel_db, small_tunnel.name,
                                       "accident", top_k=5)
        assert len(session.results()) == 5
        assert tunnel_db.query_rounds() == []

    def test_ledger_write_failure_never_fails_the_round(
            self, small_tunnel, tmp_path, fresh_telemetry):
        # Healthy warm-up (ingest + resume reads), then every INSERT
        # into the ledger hits an injected SQLITE_BUSY.
        injector = FaultInjector(FaultPlan([
            FaultRule(op="db.execute", kind="busy",
                      key_substring="INSERT INTO query_rounds"),
        ], seed=1))
        injector.enabled = False
        db = VideoDatabase(tmp_path / "x.db",
                           connection_factory=injector.connect)
        artifacts = build_artifacts(small_tunnel, mode="oracle")
        db.ingest_simulation(small_tunnel, artifacts.tracks,
                             artifacts.dataset)
        session = SemanticQuerySession(db, small_tunnel.name, "accident",
                                       top_k=5)
        injector.enabled = True
        injector.plan = FaultPlan([
            FaultRule(op="db.execute", kind="busy", rate=1.0,
                      key_substring="INSERT INTO query_rounds"),
        ], seed=1)
        ids = session.results()  # must not raise
        assert len(ids) == 5
        injector.enabled = False
        assert db.query_rounds() == []
        warnings = [e for e in fresh_telemetry.events
                    if e["name"] == "query.ledger_write_failed"]
        assert len(warnings) == 1
        assert "Busy" in warnings[0]["reason"] \
            or "locked" in warnings[0]["reason"]
