"""Tests for database maintenance: delete, export, import."""

import numpy as np
import pytest

from repro.db import LabelRecord, VideoDatabase
from repro.errors import StorageError
from repro.eval import build_artifacts


@pytest.fixture()
def populated(small_tunnel):
    db = VideoDatabase()
    artifacts = build_artifacts(small_tunnel, mode="oracle")
    db.ingest_simulation(small_tunnel, artifacts.tracks, artifacts.dataset)
    db.add_labels([
        LabelRecord(small_tunnel.name, "accident", 0, "alice", 0, True),
    ])
    return db, small_tunnel.name


class TestDeleteClip:
    def test_delete_removes_everything(self, populated):
        db, clip_id = populated
        db.delete_clip(clip_id)
        with pytest.raises(StorageError):
            db.clip(clip_id)
        assert db.track_records(clip_id) == []
        with pytest.raises(StorageError):
            db.dataset(clip_id, "accident")
        assert db.labels(clip_id, "accident") == []
        assert db._array_keys_for(clip_id) == []

    def test_delete_unknown_clip_raises(self):
        with pytest.raises(StorageError):
            VideoDatabase().delete_clip("ghost")

    def test_delete_leaves_other_clips(self, populated,
                                       small_intersection):
        db, clip_id = populated
        other = build_artifacts(small_intersection, mode="oracle")
        db.ingest_simulation(small_intersection, other.tracks,
                             other.dataset)
        db.delete_clip(clip_id)
        assert db.clip(small_intersection.name)
        assert db.dataset(small_intersection.name,
                          "accident").n_instances > 0


class TestExportImport:
    def test_roundtrip_preserves_everything(self, populated, tmp_path):
        db, clip_id = populated
        bundle = tmp_path / "clip.npz"
        db.export_clip(clip_id, bundle)
        assert bundle.exists()

        fresh = VideoDatabase()
        record = fresh.import_clip(bundle)
        assert record.clip_id == clip_id
        assert fresh.clip(clip_id).n_frames == db.clip(clip_id).n_frames

        orig = db.dataset(clip_id, "accident")
        back = fresh.dataset(clip_id, "accident")
        assert back.n_instances == orig.n_instances
        for a, b in zip(orig.all_instances(), back.all_instances()):
            assert np.allclose(a.matrix, b.matrix)

        assert len(fresh.track_records(clip_id)) \
            == len(db.track_records(clip_id))
        assert fresh.labels(clip_id, "accident", "alice")

    def test_import_rejects_duplicate_without_replace(self, populated,
                                                      tmp_path):
        db, clip_id = populated
        bundle = tmp_path / "clip.npz"
        db.export_clip(clip_id, bundle)
        with pytest.raises(StorageError, match="already exists"):
            db.import_clip(bundle)
        record = db.import_clip(bundle, replace=True)
        assert record.clip_id == clip_id

    def test_import_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, manifest=np.frombuffer(b'{"format": "nope"}',
                                              dtype=np.uint8))
        with pytest.raises(StorageError, match="not a repro clip bundle"):
            VideoDatabase().import_clip(path)

    def test_export_unknown_clip_raises(self, tmp_path):
        with pytest.raises(StorageError):
            VideoDatabase().export_clip("ghost", tmp_path / "x.npz")
