"""Streaming database ingestion: journal, exactly-once resume, live
query sessions.

A clip streamed into the database segment by segment must end up stored
exactly as the batch pipeline would store it — after a crash anywhere in
the stream, after a resume, and with no duplicate catalog rows.  An open
:class:`MultiClipQuerySession` must observe the appended bags on its
next round without being recreated.
"""

import numpy as np
import pytest

from repro.db import MultiClipQuerySession, StreamingIngest, VideoDatabase
from repro.errors import StorageError
from repro.eval import build_artifacts
from repro.pipeline import MemoryArtifactStore, PipelineConfig, PipelineRunner

SEGMENT_FRAMES = 150  # 400-frame intersection clip -> 3 segments


@pytest.fixture(scope="module")
def store():
    """Shared artifact store: segments compute once, then replay."""
    return MemoryArtifactStore()


@pytest.fixture(scope="module")
def batch(small_intersection):
    """What the whole-clip pipeline would store for the same clip."""
    return PipelineRunner(PipelineConfig()).run(small_intersection)


def stream_clip(db, sim, store, **kwargs):
    return StreamingIngest(db, sim, segment_frames=SEGMENT_FRAMES,
                           store=store, **kwargs)


def assert_stored_equals_batch(db, sim, batch):
    stored = db.dataset(sim.name, "accident")
    assert [b.bag_id for b in stored.bags] == \
        [b.bag_id for b in batch.dataset.bags]
    assert [(b.frame_lo, b.frame_hi) for b in stored.bags] == \
        [(b.frame_lo, b.frame_hi) for b in batch.dataset.bags]
    assert [i.instance_id for i in stored.all_instances()] == \
        [i.instance_id for i in batch.dataset.all_instances()]
    np.testing.assert_array_equal(stored.instance_matrix(),
                                  batch.dataset.instance_matrix())


class TestStreamingIngest:
    def test_streamed_store_equals_batch_store(self, small_intersection,
                                               store, batch):
        db = VideoDatabase()
        ingest = stream_clip(db, small_intersection, store)
        ingest.run()
        assert_stored_equals_batch(db, small_intersection, batch)
        assert len(db.track_records(small_intersection.name)) == \
            len(batch.tracks)

    def test_journal_reaches_appended_everywhere(self, small_intersection,
                                                 store):
        db = VideoDatabase()
        ingest = stream_clip(db, small_intersection, store)
        ingest.run()
        state = db.ingest_state(small_intersection.name, "accident")
        assert sorted(state) == [0, 1, 2]
        assert all(s["state"] == "appended" for s in state.values())
        log = db.ingest_log(small_intersection.name)
        # Append-only history: every segment was journalled pending
        # before anything else happened to it.
        first_seen = {}
        for row in log:
            first_seen.setdefault(row["segment_index"], row["state"])
        assert set(first_seen.values()) == {"pending"}

    def test_kill_mid_segment_resumes_exactly_once(
            self, small_intersection, store, batch, monkeypatch):
        db = VideoDatabase()
        real_append = db.append_dataset
        calls = []

        def failing_append(delta, **kwargs):
            if len(calls) == 1:
                calls.append("boom")
                raise StorageError("disk full (injected)")
            calls.append("ok")
            return real_append(delta, **kwargs)

        monkeypatch.setattr(db, "append_dataset", failing_append)
        with pytest.raises(StorageError, match="disk full"):
            stream_clip(db, small_intersection, store).run()
        state = db.ingest_state(small_intersection.name, "accident")
        assert state[0]["state"] == "appended"
        assert state[1]["state"] == "failed"
        assert "disk full" in state[1]["detail"]
        assert state[2]["state"] == "pending"

        monkeypatch.setattr(db, "append_dataset", real_append)
        resumed = stream_clip(db, small_intersection, store)
        resumed.run()
        assert resumed.segments_skipped == 1
        assert resumed.segments_appended == 2
        # The failed segment was explicitly *retried*, not skipped: its
        # latest journal row said ``failed``, and only ``appended`` rows
        # are durable.
        assert resumed.segments_retried == 1
        state = db.ingest_state(small_intersection.name, "accident")
        assert all(s["state"] == "appended" for s in state.values())
        assert_stored_equals_batch(db, small_intersection, batch)

    def test_kill_inside_append_transaction_keeps_journal_consistent(
            self, tmp_path, small_intersection, store, batch):
        """A fault *inside* the catalog transaction (between the bag
        upserts and the ``appended`` marker) must roll back atomically:
        no partial bags, no lying marker — and a fresh process resumes
        to the exact batch store."""
        from repro.reliability import FaultInjector, FaultPlan, FaultRule

        injector = FaultInjector(FaultPlan(
            [FaultRule(op="db.execute", kind="busy", rate=1.0, limit=1,
                       key_substring="INSERT OR REPLACE INTO bags")]))
        path = tmp_path / "v.db"
        db = VideoDatabase(path, connection_factory=injector.connect)
        with pytest.raises(StorageError, match="busy"):
            stream_clip(db, small_intersection, store).run()
        assert len(injector.injected) == 1

        state = db.ingest_state(small_intersection.name, "accident")
        assert state[0]["state"] == "failed"
        assert "Busy" in state[0]["detail"]
        assert state[1]["state"] == "pending"
        # The rolled-back transaction left no catalog rows behind.
        with pytest.raises(StorageError, match="no dataset"):
            db.dataset(small_intersection.name, "accident")
        db.close()

        # "Process restart": a clean connection over the same file.
        db = VideoDatabase(path)
        resumed = stream_clip(db, small_intersection, store)
        resumed.run()
        assert resumed.segments_retried == 1
        assert resumed.segments_appended == 3
        state = db.ingest_state(small_intersection.name, "accident")
        assert all(s["state"] == "appended" for s in state.values())
        assert_stored_equals_batch(db, small_intersection, batch)
        db.close()

    def test_replay_without_resume_is_idempotent(self, small_intersection,
                                                 store, batch):
        db = VideoDatabase()
        stream_clip(db, small_intersection, store).run()
        again = stream_clip(db, small_intersection, store)
        again.run(resume=False)
        assert again.segments_appended == 3
        assert again.segments_skipped == 0
        assert_stored_equals_batch(db, small_intersection, batch)

    def test_resume_skips_everything_durable(self, small_intersection,
                                             store):
        db = VideoDatabase()
        stream_clip(db, small_intersection, store).run()
        again = stream_clip(db, small_intersection, store)
        again.run()
        assert again.segments_appended == 0
        assert again.segments_skipped == 3


class TestLiveQuerySession:
    def test_open_session_observes_streamed_appends(
            self, small_tunnel, small_intersection, store):
        db = VideoDatabase()
        oracle = build_artifacts(small_tunnel, mode="oracle")
        db.ingest_simulation(small_tunnel, oracle.tracks, oracle.dataset)

        # Stream the second clip in, killing the ingest after its first
        # segment lands.
        emitted = []

        def kill_after_first(emission):
            emitted.append(emission)
            if len(emitted) == 1:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            stream_clip(db, small_intersection, store).run(
                progress=kill_after_first)
        partial = db.dataset_meta(small_intersection.name,
                                  "accident")["n_bags"]

        clip_ids = [small_intersection.name, small_tunnel.name]
        session = MultiClipQuerySession(db, clip_ids, "accident",
                                        user_id="live", top_k=10)
        assert len(session.dataset) == partial + len(oracle.dataset)
        session.feed({b: True for b in session.results()[:3]})
        version = session.engine._corpus_version

        # The ingest finishes while the session stays open ...
        stream_clip(db, small_intersection, store).run()
        full = db.dataset_meta(small_intersection.name,
                               "accident")["n_bags"]
        assert full > partial

        # ... and the very next round sees the appended bags, without
        # the session (or its engine) being recreated.
        warm = session.results()
        assert len(session.dataset) == full + len(oracle.dataset)
        assert session.engine._corpus_version > version

        fresh = MultiClipQuerySession(db, clip_ids, "accident",
                                      user_id="live", top_k=10)
        assert warm == fresh.results()
        assert session.engine.rank() == fresh.engine.rank()
