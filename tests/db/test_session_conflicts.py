"""Session-concurrency regressions: the lost-update race, ambiguous
session ids, and multi-worker access to one WAL catalog."""

import threading

import pytest

from repro.core import MultiClipOracle
from repro.db import (
    MultiClipQuerySession,
    SessionRecord,
    ThreadLocalVideoDatabase,
    VideoDatabase,
)
from repro.db.schema import LabelRecord
from repro.errors import (
    ConfigurationError,
    DatabaseBusyError,
    SessionConflictError,
    StorageError,
)
from repro.eval import build_artifacts
from repro.sim import GroundTruth


def _labels(round_index, *, user="ana", n=3, relevant=True):
    return [LabelRecord(clip_id="merged:a+b", event_name="accident",
                        bag_id=i, user_id=user, round_index=round_index,
                        relevant=relevant) for i in range(n)]


@pytest.fixture()
def catalog_path(tmp_path, small_tunnel, small_intersection):
    """File-backed two-clip catalog plus its ground truths."""
    path = str(tmp_path / "catalog.sqlite")
    truths = {}
    with VideoDatabase(path) as db:
        for sim in (small_tunnel, small_intersection):
            artifacts = build_artifacts(sim, mode="oracle")
            db.ingest_simulation(sim, artifacts.tracks, artifacts.dataset)
            truths[sim.name] = GroundTruth.from_result(sim)
    return path, [small_tunnel.name, small_intersection.name], truths


class TestOptimisticRoundGuard:
    """``add_labels(expect_round=...)`` at the catalog level."""

    def test_matching_round_commits(self):
        with VideoDatabase() as db:
            db.add_labels(_labels(0), expect_round=0)
            db.add_labels(_labels(1), expect_round=1)
            stored = db.labels("merged:a+b", "accident", "ana")
            assert {r.round_index for r in stored} == {0, 1}

    def test_stale_round_raises_and_writes_nothing(self):
        with VideoDatabase() as db:
            db.add_labels(_labels(0), expect_round=0)
            with pytest.raises(SessionConflictError) as err:
                db.add_labels(_labels(0, n=5), expect_round=0)
            assert err.value.expected_round == 0
            assert err.value.stored_next_round == 1
            stored = db.labels("merged:a+b", "accident", "ana")
            assert len(stored) == 3  # the losing batch left no rows

    def test_future_round_also_rejected(self):
        with VideoDatabase() as db:
            with pytest.raises(SessionConflictError):
                db.add_labels(_labels(2), expect_round=2)

    def test_guard_requires_single_session_head(self):
        with VideoDatabase() as db:
            mixed = _labels(0, user="ana") + _labels(0, user="bob")
            with pytest.raises(ConfigurationError):
                db.add_labels(mixed, expect_round=0)

    def test_unguarded_path_unchanged(self):
        with VideoDatabase() as db:
            db.add_labels(_labels(0))
            db.add_labels(_labels(0, relevant=False))  # REPLACE, no guard
            stored = db.labels("merged:a+b", "accident", "ana")
            assert all(not r.relevant for r in stored)


class TestLostUpdateRace:
    """Two workers resume the same session; the slower feed must lose
    loudly instead of silently merging histories (the headline bug)."""

    def test_second_feed_conflicts_and_resyncs(self, catalog_path):
        path, clips, truths = catalog_path
        oracle = MultiClipOracle(truths)
        with VideoDatabase(path) as db_a, VideoDatabase(path) as db_b:
            a = MultiClipQuerySession(db_a, clips, "accident",
                                      user_id="kim", top_k=8)
            b = MultiClipQuerySession(db_b, clips, "accident",
                                      user_id="kim", top_k=8)
            assert a.round_index == b.round_index == 0
            bags_a = [a.dataset.bag_by_id(i) for i in a.results()]
            a.feed(oracle.label_bags(bags_a))
            assert a.round_index == 1

            bags_b = [b.dataset.bag_by_id(i) for i in b.results()]
            with pytest.raises(SessionConflictError):
                b.feed(oracle.label_bags(bags_b))
            # the loser is resynced onto the winning history...
            assert b.round_index == 1
            assert b.results() == a.results()
            # ...and its retry lands as round 1, not a second round 0
            b.feed(oracle.label_bags(
                [b.dataset.bag_by_id(i) for i in b.results()]))
            assert b.round_index == 2
            stored = db_a.labels(a.corpus_id, "accident", "kim")
            assert max(r.round_index for r in stored) == 1

    def test_replay_matches_serial_history(self, catalog_path):
        path, clips, truths = catalog_path
        oracle = MultiClipOracle(truths)
        with VideoDatabase(path) as db:
            live = MultiClipQuerySession(db, clips, "accident",
                                         user_id="liu", top_k=8)
            for _ in range(3):
                bags = [live.dataset.bag_by_id(i) for i in live.results()]
                live.feed(oracle.label_bags(bags))
            final = live.results()
        with VideoDatabase(path) as db:
            resumed = MultiClipQuerySession(db, clips, "accident",
                                            user_id="liu", top_k=8)
            assert resumed.round_index == 3
            assert resumed.results() == final

    def test_conflict_is_not_retryable_verbatim(self):
        from repro.errors import RetryableError
        err = SessionConflictError("u:c:e", expected_round=0,
                                   stored_next_round=2)
        assert isinstance(err, StorageError)
        assert not isinstance(err, RetryableError)


class TestSessionIdAmbiguity:
    """``user:corpus:event`` must stay a parseable triple."""

    @pytest.mark.parametrize("user", ["a:b", ":", "kim:", ""])
    def test_adversarial_user_ids_rejected(self, catalog_path, user):
        path, clips, _ = catalog_path
        with VideoDatabase(path) as db:
            with pytest.raises(ConfigurationError):
                MultiClipQuerySession(db, clips, "accident", user_id=user)

    def test_colliding_ids_would_share_history(self, catalog_path):
        # the attack the guard prevents: "a:b" over corpus "c" collides
        # with "a" over corpus "b:c" — both spell session "a:b:c:..."
        path, clips, _ = catalog_path
        with VideoDatabase(path) as db:
            ok = MultiClipQuerySession(db, clips, "accident", user_id="a")
            assert ok.session_id.split(":", 1)[0] == "a"


class TestSessionRegistry:
    def test_roundtrip_and_upsert(self, tmp_path):
        path = str(tmp_path / "cat.sqlite")
        rec = SessionRecord(session_id="u:merged:a+b:accident",
                            user_id="u", corpus_id="merged:a+b",
                            event_name="accident", clip_ids=("a", "b"),
                            top_k=5, params={"nominator": "ivf"})
        with VideoDatabase(path) as db:
            db.register_session(rec)
            got = db.session_record(rec.session_id)
            assert got.clip_ids == ("a", "b")
            assert got.params == {"nominator": "ivf"}
            created = got.created_at
            db.register_session(SessionRecord(
                session_id=rec.session_id, user_id="u",
                corpus_id=rec.corpus_id, event_name="accident",
                clip_ids=("a", "b"), top_k=9))
            again = db.session_record(rec.session_id)
            assert again.top_k == 9
            assert again.created_at == created  # upsert keeps birth time
            assert len(db.session_records()) == 1

    def test_missing_record_raises(self, tmp_path):
        with VideoDatabase(str(tmp_path / "cat.sqlite")) as db:
            with pytest.raises(StorageError):
                db.session_record("nope")


class TestThreadLocalFacade:
    def test_rejects_memory_db(self):
        with pytest.raises(ConfigurationError):
            ThreadLocalVideoDatabase(":memory:")

    def test_one_connection_per_thread(self, tmp_path):
        path = str(tmp_path / "cat.sqlite")
        VideoDatabase(path).close()
        facade = ThreadLocalVideoDatabase(path)
        seen = {}

        def probe(name):
            facade.add_labels(_labels(0, user=name))
            seen[name] = id(facade._db())

        threads = [threading.Thread(target=probe, args=(f"u{i}",))
                   for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(seen.values())) == 3
        for name in seen:
            assert len(facade.labels("merged:a+b", "accident", name)) == 3
        facade.close_all()


class TestConcurrentWorkers:
    """Satellite 4: threads feeding/reading one WAL catalog."""

    def test_distinct_sessions_interleave_cleanly(self, catalog_path):
        path, clips, truths = catalog_path
        oracle = MultiClipOracle(truths)
        facade = ThreadLocalVideoDatabase(path)
        errors = []

        def run_user(user):
            try:
                session = MultiClipQuerySession(
                    facade, clips, "accident", user_id=user, top_k=6,
                    ledger=False)
                for _ in range(2):
                    bags = [session.dataset.bag_by_id(i)
                            for i in session.results()]
                    session.feed(oracle.label_bags(bags))
            except Exception as exc:  # noqa: BLE001 - collected below
                errors.append((user, exc))

        users = [f"worker{i}" for i in range(4)]
        threads = [threading.Thread(target=run_user, args=(u,))
                   for u in users]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not [e for e in errors
                    if isinstance(e[1], DatabaseBusyError)], errors
        assert not errors, errors
        # every thread's history replays to the same state serially
        with VideoDatabase(path) as db:
            for user in users:
                replay = MultiClipQuerySession(db, clips, "accident",
                                               user_id=user, top_k=6)
                assert replay.round_index == 2
        facade.close_all()
