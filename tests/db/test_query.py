"""Tests for persistent semantic query sessions."""

import pytest

from repro.core import MILRetrievalEngine, OracleUser
from repro.db import SemanticQuerySession, VideoDatabase
from repro.errors import ConfigurationError
from repro.events import AccidentModel, build_dataset, extract_series
from repro.sim import GroundTruth
from repro.tracking.oracle import tracks_from_simulation


@pytest.fixture()
def db_with_clip(small_tunnel):
    db = VideoDatabase()
    tracks = tracks_from_simulation(small_tunnel)
    dataset = build_dataset(extract_series(tracks), AccidentModel(),
                            clip_id=small_tunnel.name)
    db.ingest_simulation(small_tunnel, tracks, dataset)
    return db, GroundTruth.from_result(small_tunnel)


class TestSemanticQuerySession:
    def test_results_are_bag_ids(self, db_with_clip, small_tunnel):
        db, _ = db_with_clip
        session = SemanticQuerySession(db, small_tunnel.name, "accident",
                                       top_k=5)
        results = session.results()
        assert len(results) == 5
        windows = session.result_windows()
        assert [w[0] for w in windows] == results

    def test_feedback_persists_labels(self, db_with_clip, small_tunnel):
        db, gt = db_with_clip
        session = SemanticQuerySession(db, small_tunnel.name, "accident",
                                       user_id="u1", top_k=5)
        user = OracleUser(gt)
        bags = [session.dataset.bag_by_id(b) for b in session.results()]
        session.feed(user.label_bags(bags))
        stored = db.labels(small_tunnel.name, "accident", "u1")
        assert len(stored) == 5
        assert all(l.round_index == 0 for l in stored)

    def test_session_resume_restores_feedback(self, db_with_clip,
                                              small_tunnel):
        db, gt = db_with_clip
        first = SemanticQuerySession(db, small_tunnel.name, "accident",
                                     user_id="u2", top_k=8)
        user = OracleUser(gt)
        bags = [first.dataset.bag_by_id(b) for b in first.results()]
        first.feed(user.label_bags(bags))
        after_feedback = first.results()

        resumed = SemanticQuerySession(db, small_tunnel.name, "accident",
                                       user_id="u2", top_k=8)
        assert resumed.round_index == 1
        assert resumed.results() == after_feedback

    def test_users_are_isolated(self, db_with_clip, small_tunnel):
        db, gt = db_with_clip
        s1 = SemanticQuerySession(db, small_tunnel.name, "accident",
                                  user_id="a", top_k=5)
        s1.feed({b: True for b in s1.results()})
        s2 = SemanticQuerySession(db, small_tunnel.name, "accident",
                                  user_id="b", top_k=5)
        assert s2.round_index == 0
        assert not s2.engine.labels

    def test_custom_engine_instance(self, db_with_clip, small_tunnel):
        db, _ = db_with_clip
        dataset = db.dataset(small_tunnel.name, "accident")
        engine = MILRetrievalEngine(dataset, training_policy="top2")
        session = SemanticQuerySession(db, small_tunnel.name, "accident",
                                       engine=engine)
        assert session.engine is engine

    def test_engine_registry(self, db_with_clip, small_tunnel):
        db, _ = db_with_clip
        session = SemanticQuerySession(db, small_tunnel.name, "accident",
                                       engine="weighted_rf")
        assert session.results()

    def test_validation(self, db_with_clip, small_tunnel):
        db, _ = db_with_clip
        with pytest.raises(ConfigurationError):
            SemanticQuerySession(db, small_tunnel.name, "accident",
                                 engine="bogus")
        with pytest.raises(ConfigurationError):
            SemanticQuerySession(db, small_tunnel.name, "accident", top_k=0)
        session = SemanticQuerySession(db, small_tunnel.name, "accident")
        with pytest.raises(ConfigurationError):
            session.feed({})
