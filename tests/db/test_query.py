"""Tests for persistent semantic query sessions."""

import pytest

from repro.core import MILRetrievalEngine, OracleUser
from repro.db import SemanticQuerySession, VideoDatabase
from repro.errors import ConfigurationError
from repro.events import AccidentModel, build_dataset, extract_series
from repro.sim import GroundTruth
from repro.tracking.oracle import tracks_from_simulation


@pytest.fixture()
def db_with_clip(small_tunnel):
    db = VideoDatabase()
    tracks = tracks_from_simulation(small_tunnel)
    dataset = build_dataset(extract_series(tracks), AccidentModel(),
                            clip_id=small_tunnel.name)
    db.ingest_simulation(small_tunnel, tracks, dataset)
    return db, GroundTruth.from_result(small_tunnel)


class TestSemanticQuerySession:
    def test_results_are_bag_ids(self, db_with_clip, small_tunnel):
        db, _ = db_with_clip
        session = SemanticQuerySession(db, small_tunnel.name, "accident",
                                       top_k=5)
        results = session.results()
        assert len(results) == 5
        windows = session.result_windows()
        assert [w[0] for w in windows] == results

    def test_feedback_persists_labels(self, db_with_clip, small_tunnel):
        db, gt = db_with_clip
        session = SemanticQuerySession(db, small_tunnel.name, "accident",
                                       user_id="u1", top_k=5)
        user = OracleUser(gt)
        bags = [session.dataset.bag_by_id(b) for b in session.results()]
        session.feed(user.label_bags(bags))
        stored = db.labels(small_tunnel.name, "accident", "u1")
        assert len(stored) == 5
        assert all(rec.round_index == 0 for rec in stored)

    def test_session_resume_restores_feedback(self, db_with_clip,
                                              small_tunnel):
        db, gt = db_with_clip
        first = SemanticQuerySession(db, small_tunnel.name, "accident",
                                     user_id="u2", top_k=8)
        user = OracleUser(gt)
        bags = [first.dataset.bag_by_id(b) for b in first.results()]
        first.feed(user.label_bags(bags))
        after_feedback = first.results()

        resumed = SemanticQuerySession(db, small_tunnel.name, "accident",
                                       user_id="u2", top_k=8)
        assert resumed.round_index == 1
        assert resumed.results() == after_feedback

    def test_users_are_isolated(self, db_with_clip, small_tunnel):
        db, gt = db_with_clip
        s1 = SemanticQuerySession(db, small_tunnel.name, "accident",
                                  user_id="a", top_k=5)
        s1.feed({b: True for b in s1.results()})
        s2 = SemanticQuerySession(db, small_tunnel.name, "accident",
                                  user_id="b", top_k=5)
        assert s2.round_index == 0
        assert not s2.engine.labels

    def test_custom_engine_instance(self, db_with_clip, small_tunnel):
        db, _ = db_with_clip
        dataset = db.dataset(small_tunnel.name, "accident")
        engine = MILRetrievalEngine(dataset, training_policy="top2")
        session = SemanticQuerySession(db, small_tunnel.name, "accident",
                                       engine=engine)
        assert session.engine is engine

    def test_engine_registry(self, db_with_clip, small_tunnel):
        db, _ = db_with_clip
        session = SemanticQuerySession(db, small_tunnel.name, "accident",
                                       engine="weighted_rf")
        assert session.results()

    def test_validation(self, db_with_clip, small_tunnel):
        db, _ = db_with_clip
        with pytest.raises(ConfigurationError):
            SemanticQuerySession(db, small_tunnel.name, "accident",
                                 engine="bogus")
        with pytest.raises(ConfigurationError):
            SemanticQuerySession(db, small_tunnel.name, "accident", top_k=0)
        session = SemanticQuerySession(db, small_tunnel.name, "accident")
        with pytest.raises(ConfigurationError):
            session.feed({})


class TestFeedStateConsistency:
    """Regression: a feed round the engine rejects must leave the stored
    label history, the round counter, and the engine untouched — the old
    code persisted first, so a rejected round desynced DB vs engine for
    every later resume."""

    def test_rejected_feed_leaves_session_and_db_untouched(
            self, db_with_clip, small_tunnel):
        db, _ = db_with_clip
        session = SemanticQuerySession(db, small_tunnel.name, "accident",
                                       user_id="r1", top_k=5)
        before = session.results()
        with pytest.raises(ConfigurationError, match="unknown bag ids"):
            session.feed({999_999: True})
        assert session.round_index == 0
        assert session.engine.labels == {}
        assert db.labels(small_tunnel.name, "accident", "r1") == []
        assert session.results() == before

    def test_resume_after_rejected_feed_is_clean(self, db_with_clip,
                                                 small_tunnel):
        db, _ = db_with_clip
        session = SemanticQuerySession(db, small_tunnel.name, "accident",
                                       user_id="r2", top_k=5)
        good = {b: True for b in session.results()}
        session.feed(good)
        with pytest.raises(ConfigurationError):
            session.feed({999_999: False})
        resumed = SemanticQuerySession(db, small_tunnel.name, "accident",
                                       user_id="r2", top_k=5)
        assert resumed.round_index == 1
        assert resumed.engine.labels == session.engine.labels
        assert resumed.results() == session.results()


class TestVehicleClassCache:
    def test_classes_fetched_once_per_clip(self, db_with_clip,
                                           small_tunnel):
        db, _ = db_with_clip
        session = SemanticQuerySession(db, small_tunnel.name, "accident",
                                       top_k=5)
        calls = []
        original = db.vehicle_classes

        def counting(clip_id):
            calls.append(clip_id)
            return original(clip_id)

        db.vehicle_classes = counting
        session.results(vehicle_class="car")
        session.results(vehicle_class="car")
        assert calls == [small_tunnel.name]

    def test_cache_invalidated_by_metadata_change(self, db_with_clip,
                                                  small_tunnel):
        db, _ = db_with_clip
        session = SemanticQuerySession(db, small_tunnel.name, "accident",
                                       top_k=5)
        calls = []
        original = db.vehicle_classes

        def counting(clip_id):
            calls.append(clip_id)
            return original(clip_id)

        db.vehicle_classes = counting
        session.results(vehicle_class="car")
        db.add_tracks(small_tunnel.name, [])  # bumps metadata_version
        session.results(vehicle_class="car")
        assert calls == [small_tunnel.name, small_tunnel.name]

    def test_filter_restricts_to_matching_bags(self, db_with_clip,
                                               small_tunnel):
        db, _ = db_with_clip
        session = SemanticQuerySession(db, small_tunnel.name, "accident",
                                       top_k=5)
        classes = db.vehicle_classes(small_tunnel.name)
        present = {c for c in classes.values() if c}
        for cls in present or {"car"}:
            for bag_id in session.results(vehicle_class=cls):
                bag = session.dataset.bag_by_id(bag_id)
                assert any(classes.get(i.track_id) == cls
                           for i in bag.instances)
        assert session.results(vehicle_class="hovercraft") == []
