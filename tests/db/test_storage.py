"""Tests for the array side-stores."""

import numpy as np
import pytest

from repro.db import InMemoryArrayStore, NpzArrayStore
from repro.errors import StorageError


@pytest.fixture(params=["memory", "npz"])
def store(request, tmp_path):
    if request.param == "memory":
        return InMemoryArrayStore()
    return NpzArrayStore(tmp_path / "arrays")


class TestArrayStore:
    def test_roundtrip(self, store):
        arrays = {"a": np.arange(6).reshape(2, 3), "b": np.ones(4)}
        store.save("clip1/tracks", arrays)
        loaded = store.load("clip1/tracks")
        assert set(loaded) == {"a", "b"}
        assert np.array_equal(loaded["a"], arrays["a"])

    def test_overwrite(self, store):
        store.save("k", {"x": np.zeros(2)})
        store.save("k", {"x": np.ones(3)})
        assert np.array_equal(store.load("k")["x"], np.ones(3))

    def test_missing_key_raises(self, store):
        with pytest.raises(StorageError, match="no arrays"):
            store.load("nothing/here")

    def test_exists_and_delete(self, store):
        store.save("k", {"x": np.zeros(1)})
        assert store.exists("k")
        store.delete("k")
        assert not store.exists("k")
        store.delete("k")  # idempotent

    def test_keys_listing(self, store):
        store.save("b/2", {"x": np.zeros(1)})
        store.save("a/1", {"x": np.zeros(1)})
        assert store.keys() == ["a/1", "b/2"]

    @pytest.mark.parametrize("bad", ["", "a//b", "../etc", "a b", "a/./b"])
    def test_invalid_keys_rejected(self, store, bad):
        with pytest.raises(StorageError):
            store.save(bad, {"x": np.zeros(1)})

    def test_mutating_loaded_copy_is_safe(self, store):
        store.save("k", {"x": np.zeros(3)})
        loaded = store.load("k")
        loaded["x"][:] = 99
        assert np.array_equal(store.load("k")["x"], np.zeros(3))


class TestNpzPersistence:
    def test_survives_reopen(self, tmp_path):
        root = tmp_path / "arrays"
        NpzArrayStore(root).save("clip/x", {"a": np.arange(5)})
        fresh = NpzArrayStore(root)
        assert np.array_equal(fresh.load("clip/x")["a"], np.arange(5))
