"""Tests for multi-clip (whole-database) query sessions."""

import pytest

from repro.core import MultiClipOracle
from repro.db import MultiClipQuerySession, VideoDatabase
from repro.db.schema import ClipRecord
from repro.errors import ConfigurationError
from repro.eval import build_artifacts
from repro.sim import GroundTruth


@pytest.fixture()
def two_clip_db(small_tunnel, small_intersection):
    db = VideoDatabase()
    truths = {}
    for sim in (small_tunnel, small_intersection):
        artifacts = build_artifacts(sim, mode="oracle")
        db.ingest_simulation(sim, artifacts.tracks, artifacts.dataset)
        truths[sim.name] = GroundTruth.from_result(sim)
    return db, truths


class TestMultiClipQuerySession:
    def test_merged_corpus_size(self, two_clip_db, small_tunnel,
                                small_intersection):
        db, _ = two_clip_db
        session = MultiClipQuerySession(
            db, [small_tunnel.name, small_intersection.name], "accident")
        per_clip = (len(db.dataset(small_tunnel.name, "accident"))
                    + len(db.dataset(small_intersection.name, "accident")))
        assert len(session.dataset) == per_clip

    def test_results_span_both_clips(self, two_clip_db, small_tunnel,
                                     small_intersection):
        db, _ = two_clip_db
        session = MultiClipQuerySession(
            db, [small_tunnel.name, small_intersection.name], "accident",
            top_k=len(db.dataset(small_tunnel.name, "accident"))
            + len(db.dataset(small_intersection.name, "accident")))
        clips = {session.dataset.bag_by_id(b).clip_id
                 for b in session.results()}
        assert clips == {small_tunnel.name, small_intersection.name}

    def test_feedback_with_multiclip_oracle(self, two_clip_db,
                                            small_tunnel,
                                            small_intersection):
        db, truths = two_clip_db
        session = MultiClipQuerySession(
            db, [small_tunnel.name, small_intersection.name], "accident",
            user_id="dana", top_k=10)
        oracle = MultiClipOracle(truths)
        bags = [session.dataset.bag_by_id(b) for b in session.results()]
        session.feed(oracle.label_bags(bags))
        assert session.round_index == 1
        stored = db.labels(session.corpus_id, "accident", "dana")
        assert len(stored) == 10

    def test_resume_restores_merged_session(self, two_clip_db,
                                            small_tunnel,
                                            small_intersection):
        db, truths = two_clip_db
        clip_ids = [small_tunnel.name, small_intersection.name]
        first = MultiClipQuerySession(db, clip_ids, "accident",
                                      user_id="ed", top_k=8)
        oracle = MultiClipOracle(truths)
        bags = [first.dataset.bag_by_id(b) for b in first.results()]
        first.feed(oracle.label_bags(bags))
        after = first.results()

        resumed = MultiClipQuerySession(db, clip_ids, "accident",
                                        user_id="ed", top_k=8)
        assert resumed.round_index == 1
        assert resumed.results() == after

    def test_corpus_isolated_from_single_clip_labels(self, two_clip_db,
                                                     small_tunnel,
                                                     small_intersection):
        from repro.db import SemanticQuerySession

        db, _ = two_clip_db
        single = SemanticQuerySession(db, small_tunnel.name, "accident",
                                      user_id="f", top_k=5)
        single.feed({b: True for b in single.results()})
        merged = MultiClipQuerySession(
            db, [small_tunnel.name, small_intersection.name], "accident",
            user_id="f", top_k=5)
        assert merged.round_index == 0
        assert not merged.engine.labels

    def test_empty_clip_list_rejected(self, two_clip_db):
        db, _ = two_clip_db
        with pytest.raises(ConfigurationError):
            MultiClipQuerySession(db, [], "accident")


class TestShardedSession:
    def test_sharded_matches_merged_over_oracle_protocol(
            self, two_clip_db, small_tunnel, small_intersection):
        """The sharded default must reproduce the merged-dataset path's
        results on every round of an oracle feedback protocol."""
        db, truths = two_clip_db
        clip_ids = [small_tunnel.name, small_intersection.name]
        sharded = MultiClipQuerySession(db, clip_ids, "accident",
                                        user_id="s", top_k=10)
        merged = MultiClipQuerySession(db, clip_ids, "accident",
                                       user_id="m", top_k=10,
                                       sharded=False)
        oracle = MultiClipOracle(truths)
        for _ in range(4):
            results = sharded.results()
            assert merged.results() == results
            labels = oracle.label_bags(
                [sharded.dataset.bag_by_id(b) for b in results])
            sharded.feed(labels)
            merged.feed(labels)
        assert merged.results() == sharded.results()

    def test_shards_load_lazily_behind_session(self, two_clip_db,
                                               small_tunnel,
                                               small_intersection):
        db, _ = two_clip_db
        session = MultiClipQuerySession(
            db, [small_tunnel.name, small_intersection.name], "accident")
        assert session.engine.corpus.loaded_clip_ids == []
        session.results()
        assert set(session.engine.corpus.loaded_clip_ids) == {
            small_tunnel.name, small_intersection.name}

    def test_pruned_session_runs_feedback(self, two_clip_db, small_tunnel,
                                          small_intersection):
        db, truths = two_clip_db
        session = MultiClipQuerySession(
            db, [small_tunnel.name, small_intersection.name], "accident",
            candidates_per_shard=2, top_k=5)
        assert session.engine.candidates_per_shard == 2
        oracle = MultiClipOracle(truths)
        for _ in range(2):
            bags = [session.dataset.bag_by_id(b)
                    for b in session.results()]
            session.feed(oracle.label_bags(bags))
        assert sorted(session.engine.rank()) == \
            list(range(len(session.dataset)))

    def test_candidates_per_shard_needs_sharded_path(
            self, two_clip_db, small_tunnel, small_intersection):
        db, _ = two_clip_db
        clip_ids = [small_tunnel.name, small_intersection.name]
        with pytest.raises(ConfigurationError,
                           match="candidates_per_shard"):
            MultiClipQuerySession(db, clip_ids, "accident",
                                  candidates_per_shard=2, sharded=False)
        with pytest.raises(ConfigurationError,
                           match="candidates_per_shard"):
            MultiClipQuerySession(db, clip_ids, "accident",
                                  candidates_per_shard=2,
                                  engine="weighted_rf")

    def test_ivf_session_runs_feedback(self, two_clip_db, small_tunnel,
                                       small_intersection):
        db, truths = two_clip_db
        session = MultiClipQuerySession(
            db, [small_tunnel.name, small_intersection.name], "accident",
            candidates_per_shard=4, nominator="ivf", index_cells=8,
            nprobe=2, top_k=5)
        nominator = session.engine.nominator
        assert nominator.name == "ivf"
        assert nominator.n_cells == 8 and nominator.nprobe == 2
        oracle = MultiClipOracle(truths)
        for _ in range(2):
            bags = [session.dataset.bag_by_id(b)
                    for b in session.results()]
            session.feed(oracle.label_bags(bags))
        assert sorted(session.engine.rank()) == \
            list(range(len(session.dataset)))

    def test_ivf_knobs_validated(self, two_clip_db, small_tunnel,
                                 small_intersection):
        db, _ = two_clip_db
        clip_ids = [small_tunnel.name, small_intersection.name]
        with pytest.raises(ConfigurationError, match="nominator='ivf'"):
            MultiClipQuerySession(db, clip_ids, "accident",
                                  nominator="ivf", sharded=False)
        with pytest.raises(ConfigurationError, match="nominator='ivf'"):
            MultiClipQuerySession(db, clip_ids, "accident",
                                  nominator="ivf", engine="weighted_rf")
        with pytest.raises(ConfigurationError, match="nprobe/index_cells"):
            MultiClipQuerySession(db, clip_ids, "accident", nprobe=4)
        with pytest.raises(ConfigurationError, match="nominator must be"):
            MultiClipQuerySession(db, clip_ids, "accident",
                                  nominator="faiss")

    def test_merged_fallback_engine_registry(self, two_clip_db,
                                             small_tunnel,
                                             small_intersection):
        db, _ = two_clip_db
        session = MultiClipQuerySession(
            db, [small_tunnel.name, small_intersection.name], "accident",
            engine="weighted_rf", top_k=5)
        assert session.results()

    def test_incompatible_datasets_rejected(self, two_clip_db,
                                            small_tunnel,
                                            small_intersection):
        from repro.core.bags import MILDataset

        db, _ = two_clip_db
        other = db.dataset(small_intersection.name, "accident")
        skewed = MILDataset(
            clip_id="skewed", event_name="accident",
            feature_names=other.feature_names,
            window_size=other.window_size + 1,
            sampling_rate=other.sampling_rate,
            bags=[])
        db.add_clip(ClipRecord(clip_id="skewed", location="x",
                               fps=20, n_frames=100))
        db.add_dataset(skewed)
        with pytest.raises(ConfigurationError, match="not compatible"):
            MultiClipQuerySession(db, [small_tunnel.name, "skewed"],
                                  "accident")
