"""Tests for the feature scalers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import NotFittedError
from repro.svm import MinMaxScaler, StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        x = np.random.default_rng(0).normal(5.0, 3.0, size=(200, 4))
        z = StandardScaler().fit_transform(x)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_not_divided_by_zero(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        z = StandardScaler().fit_transform(x)
        assert np.all(np.isfinite(z))
        assert np.allclose(z[:, 0], 0.0)

    def test_transform_uses_fit_statistics(self):
        scaler = StandardScaler().fit(np.array([[0.0], [10.0]]))
        out = scaler.transform(np.array([[5.0]]))
        assert out[0, 0] == pytest.approx(0.0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((2, 2)))

    @given(hnp.arrays(np.float64, (15, 3),
                      elements=st.floats(-100, 100, allow_nan=False)))
    @settings(max_examples=40, deadline=None)
    def test_property_inverse_roundtrip(self, x):
        scaler = StandardScaler().fit(x)
        z = scaler.transform(x)
        assert np.allclose(scaler.inverse_transform(z), x, atol=1e-8)


class TestMinMaxScaler:
    def test_unit_interval(self):
        x = np.random.default_rng(1).uniform(-10, 10, size=(50, 3))
        z = MinMaxScaler().fit_transform(x)
        assert z.min() >= 0.0 and z.max() <= 1.0
        assert np.allclose(z.min(axis=0), 0.0)
        assert np.allclose(z.max(axis=0), 1.0)

    def test_clipping_outside_fit_range(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [10.0]]))
        out = scaler.transform(np.array([[-5.0], [15.0]]))
        assert out[0, 0] == 0.0
        assert out[1, 0] == 1.0

    def test_no_clip_option(self):
        scaler = MinMaxScaler(clip=False).fit(np.array([[0.0], [10.0]]))
        out = scaler.transform(np.array([[20.0]]))
        assert out[0, 0] == pytest.approx(2.0)

    def test_constant_column_maps_to_zero(self):
        x = np.full((5, 1), 7.0)
        z = MinMaxScaler().fit_transform(x)
        assert np.allclose(z, 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(np.zeros((2, 2)))
