"""Kernel tests: values, symmetry, positive semi-definiteness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ConfigurationError
from repro.svm import LinearKernel, PolynomialKernel, RBFKernel, resolve_kernel


def _points(seed=0, n=12, d=3):
    return np.random.default_rng(seed).normal(size=(n, d))


class TestLinearKernel:
    def test_matches_dot_products(self):
        x = _points()
        gram = LinearKernel()(x, x)
        assert np.allclose(gram, x @ x.T)

    def test_rectangular(self):
        a, b = _points(0, 5, 3), _points(1, 7, 3)
        assert LinearKernel()(a, b).shape == (5, 7)


class TestRBFKernel:
    def test_diagonal_is_one(self):
        x = _points()
        gram = RBFKernel(0.5)(x, x)
        assert np.allclose(np.diag(gram), 1.0)

    def test_value_formula(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[3.0, 4.0]])
        gram = RBFKernel(0.1)(a, b)
        assert gram[0, 0] == pytest.approx(np.exp(-0.1 * 25.0))

    def test_from_sigma_matches_paper_parameterisation(self):
        a = np.array([[0.0]])
        b = np.array([[2.0]])
        sigma = 1.5
        gram = RBFKernel.from_sigma(sigma)(a, b)
        assert gram[0, 0] == pytest.approx(np.exp(-4.0 / (2 * sigma**2)))

    def test_scale_gamma_resolved_by_prepare(self):
        x = _points()
        kernel = RBFKernel("scale").prepare(x)
        expected = 1.0 / (x.shape[1] * x.var())
        assert kernel.gamma == pytest.approx(expected)

    def test_auto_gamma(self):
        x = _points(d=4)
        kernel = RBFKernel("auto").prepare(x)
        assert kernel.gamma == pytest.approx(0.25)

    def test_symbolic_gamma_unprepared_raises(self):
        with pytest.raises(ConfigurationError, match="symbolic"):
            RBFKernel("scale")(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_bad_gamma_rejected(self):
        with pytest.raises(ConfigurationError):
            RBFKernel("bogus")
        with pytest.raises(ConfigurationError):
            RBFKernel(-1.0)

    @given(hnp.arrays(np.float64, (6, 3),
                      elements=st.floats(-5, 5, allow_nan=False)))
    @settings(max_examples=40, deadline=None)
    def test_property_gram_is_psd(self, x):
        gram = RBFKernel(0.7)(x, x)
        assert np.allclose(gram, gram.T)
        eigvals = np.linalg.eigvalsh(gram)
        assert eigvals.min() > -1e-8

    @given(hnp.arrays(np.float64, (5, 2),
                      elements=st.floats(-3, 3, allow_nan=False)))
    @settings(max_examples=40, deadline=None)
    def test_property_values_in_unit_interval(self, x):
        gram = RBFKernel(1.0)(x, x)
        assert gram.min() >= 0.0
        assert gram.max() <= 1.0 + 1e-12


class TestPolynomialKernel:
    def test_value_formula(self):
        a = np.array([[1.0, 2.0]])
        b = np.array([[3.0, 1.0]])
        gram = PolynomialKernel(degree=2, gamma=0.5, coef0=1.0)(a, b)
        assert gram[0, 0] == pytest.approx((0.5 * 5.0 + 1.0) ** 2)

    def test_psd_on_random_points(self):
        x = _points()
        gram = PolynomialKernel(degree=3)(x, x)
        assert np.linalg.eigvalsh(gram).min() > -1e-6


class TestResolveKernel:
    def test_by_name(self):
        assert isinstance(resolve_kernel("rbf"), RBFKernel)
        assert isinstance(resolve_kernel("linear"), LinearKernel)
        assert isinstance(resolve_kernel("poly"), PolynomialKernel)

    def test_pass_through_instance(self):
        k = RBFKernel(2.0)
        assert resolve_kernel(k) is k

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_kernel("sigmoid")
