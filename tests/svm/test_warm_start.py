"""Tests for warm-started SMO solves."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ConfigurationError
from repro.svm import OneClassSVM, RBFKernel, solve_one_class_smo
from repro.svm.smo import project_feasible


def _gram(n=40, seed=0):
    x = np.random.default_rng(seed).normal(size=(n, 2))
    return RBFKernel(0.5)(x, x), x


class TestProjectFeasible:
    def test_already_feasible_kept(self):
        alpha = np.array([0.5, 0.3, 0.2])
        out = project_feasible(alpha, c=0.6)
        assert np.allclose(out, alpha)

    def test_clips_and_renormalizes(self):
        out = project_feasible(np.array([2.0, 0.0, 0.0]), c=0.6)
        assert out.sum() == pytest.approx(1.0)
        assert out.max() <= 0.6 + 1e-12
        assert out.min() >= -1e-12

    def test_zero_guess_becomes_feasible(self):
        out = project_feasible(np.zeros(5), c=0.3)
        assert out.sum() == pytest.approx(1.0)
        assert out.max() <= 0.3 + 1e-12

    @given(guess=hnp.arrays(np.float64, 8,
                            elements=st.floats(-2, 2, allow_nan=False)),
           c_mult=st.floats(1.05, 4.0))
    @settings(max_examples=60, deadline=None)
    def test_property_always_feasible(self, guess, c_mult):
        c = c_mult / len(guess)  # guarantees n*c > 1
        out = project_feasible(guess, c)
        assert out.sum() == pytest.approx(1.0, abs=1e-9)
        assert out.min() >= -1e-12
        assert out.max() <= c + 1e-12


class TestWarmStartSolver:
    def test_same_objective_as_cold(self):
        q, _ = _gram()
        cold = solve_one_class_smo(q, 0.3, tol=1e-8)
        warm = solve_one_class_smo(q, 0.3, tol=1e-8, alpha0=cold.alpha)
        obj_cold = 0.5 * cold.alpha @ q @ cold.alpha
        obj_warm = 0.5 * warm.alpha @ q @ warm.alpha
        assert obj_warm == pytest.approx(obj_cold, abs=1e-9)

    def test_warm_start_from_solution_is_instant(self):
        q, _ = _gram()
        cold = solve_one_class_smo(q, 0.3, tol=1e-8)
        warm = solve_one_class_smo(q, 0.3, tol=1e-8, alpha0=cold.alpha)
        assert warm.n_iter <= max(1, cold.n_iter // 10)

    def test_warm_start_on_grown_problem(self):
        """Previous alphas padded with zeros still speed up the solve."""
        q_big, x = _gram(n=60, seed=3)
        q_small = q_big[:50, :50]
        small = solve_one_class_smo(q_small, 0.3, tol=1e-8)
        guess = np.concatenate([small.alpha, np.zeros(10)])
        warm = solve_one_class_smo(q_big, 0.3, tol=1e-8, alpha0=guess)
        cold = solve_one_class_smo(q_big, 0.3, tol=1e-8)
        obj_warm = 0.5 * warm.alpha @ q_big @ warm.alpha
        obj_cold = 0.5 * cold.alpha @ q_big @ cold.alpha
        assert obj_warm == pytest.approx(obj_cold, abs=1e-7)
        assert warm.n_iter <= cold.n_iter

    def test_wrong_length_rejected(self):
        q, _ = _gram(n=10)
        with pytest.raises(ConfigurationError, match="length"):
            solve_one_class_smo(q, 0.3, alpha0=np.zeros(5))


class TestWarmStartEstimatorAndEngine:
    def test_estimator_accepts_alpha0(self):
        _, x = _gram()
        cold = OneClassSVM(nu=0.3, gamma=0.5).fit(x)
        warm = OneClassSVM(nu=0.3, gamma=0.5).fit(x, alpha0=cold.alpha_)
        assert warm.rho_ == pytest.approx(cold.rho_, abs=1e-6)
        probes = x[:5]
        assert np.allclose(warm.decision_function(probes),
                           cold.decision_function(probes), atol=1e-6)

    def test_engine_warm_start_same_rankings(self):
        from repro.core import MILRetrievalEngine, OracleUser, RetrievalSession
        from tests.core.conftest import make_toy

        ds, gt = make_toy()
        runs = []
        for warm in (False, True):
            engine = MILRetrievalEngine(ds, warm_start=warm)
            session = RetrievalSession(engine, OracleUser(gt), top_k=10)
            session.run(4)
            runs.append(session.accuracies())
        assert runs[0] == runs[1]
