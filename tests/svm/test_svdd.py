"""Tests for Support Vector Data Description (the paper's "ball")."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, NotFittedError
from repro.svm import SVDD, OneClassSVM


def _blob(n=80, d=2, seed=0, center=0.0):
    return np.random.default_rng(seed).normal(center, 1.0, size=(n, d))


class TestFitPredict:
    def test_ball_contains_inliers_excludes_outliers(self):
        x = _blob(n=150)
        model = SVDD(nu=0.1, gamma=0.2).fit(x)
        assert model.predict(np.zeros((1, 2)))[0] == 1
        assert model.predict(np.array([[20.0, 20.0]]))[0] == -1

    def test_radius_positive(self):
        model = SVDD(nu=0.3).fit(_blob())
        assert model.radius2_ > 0

    def test_training_outlier_fraction_close_to_nu(self):
        x = _blob(n=300, seed=2)
        model = SVDD(nu=0.3, gamma=0.2).fit(x)
        fraction = float(np.mean(model.predict(x) == -1))
        assert fraction == pytest.approx(0.3, abs=0.12)

    def test_decision_decreases_with_distance(self):
        model = SVDD(nu=0.2, gamma=0.2).fit(_blob(seed=1))
        radii = np.array([0.0, 1.0, 3.0, 8.0])
        points = np.column_stack([radii, np.zeros_like(radii)])
        scores = model.decision_function(points)
        assert np.all(np.diff(scores) < 0)

    def test_linear_kernel_minimal_sphere(self):
        """With a hard margin (nu -> 1/n) and a linear kernel, SVDD is the
        minimal enclosing ball of the data in input space."""
        x = np.array([[-1.0, 0.0], [1.0, 0.0], [0.0, 0.5], [0.0, -0.5]])
        model = SVDD(nu=1.0 / len(x) + 1e-9, kernel="linear").fit(x)
        # Ball centre ~ origin, radius ~ 1.
        assert model.radius2_ == pytest.approx(1.0, abs=0.1)
        inside = model.decision_function(np.array([[0.0, 0.0]]))
        assert inside[0] > 0

    def test_single_point(self):
        model = SVDD(nu=0.5).fit(np.array([[1.0, 2.0]]))
        assert model.predict(np.array([[1.0, 2.0]]))[0] == 1


class TestEquivalenceWithOCSVM:
    @given(seed=st.integers(0, 40), nu=st.floats(0.1, 0.8))
    @settings(max_examples=20, deadline=None)
    def test_rbf_rankings_match_ocsvm(self, seed, nu):
        """Known identity: for kernels with constant K(x,x), SVDD and the
        nu-OCSVM produce the same ranking (affine-related decisions)."""
        x = _blob(n=40, seed=seed)
        probes = np.random.default_rng(seed + 1).normal(0, 3, size=(25, 2))
        svdd = SVDD(nu=nu, gamma=0.3, tol=1e-7).fit(x)
        ocsvm = OneClassSVM(nu=nu, gamma=0.3, tol=1e-7).fit(x)
        a = svdd.decision_function(probes)
        b = ocsvm.decision_function(probes)
        assert np.array_equal(np.argsort(a), np.argsort(b))

    def test_linear_kernel_differs_from_ocsvm(self):
        """Off-origin data: the hyperplane and the ball disagree."""
        x = _blob(n=60, seed=3) + np.array([5.0, 0.0])
        probes = np.array([[10.0, 0.0], [0.0, 0.0]])
        svdd = SVDD(nu=0.2, kernel="linear").fit(x)
        ocsvm = OneClassSVM(nu=0.2, kernel="linear").fit(x)
        # The ball rejects both far points; the hyperplane machine keeps
        # the far-along-the-mean-direction one.
        assert svdd.predict(probes)[0] == -1
        assert ocsvm.predict(probes)[0] == 1


class TestValidationAndEngine:
    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            SVDD().decision_function(np.zeros((1, 2)))

    def test_dimension_mismatch(self):
        model = SVDD().fit(_blob())
        with pytest.raises(ConfigurationError):
            model.decision_function(np.zeros((1, 5)))

    def test_bad_nu(self):
        with pytest.raises(ConfigurationError):
            SVDD(nu=0.0)

    def test_engine_with_svdd_learner(self):
        from repro.core import MILRetrievalEngine, OracleUser, RetrievalSession
        from tests.core.conftest import make_toy

        ds, gt = make_toy()
        engine = MILRetrievalEngine(ds, learner="svdd")
        session = RetrievalSession(engine, OracleUser(gt), top_k=10)
        accs = [r.accuracy() for r in session.run(3)]
        assert accs[-1] >= accs[0]

    def test_engine_rejects_unknown_learner(self):
        from repro.core import MILRetrievalEngine
        from tests.core.conftest import make_toy

        ds, _ = make_toy()
        with pytest.raises(ConfigurationError):
            MILRetrievalEngine(ds, learner="forest")
