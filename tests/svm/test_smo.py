"""Solver tests: feasibility, KKT conditions, scipy-QP cross-check."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import minimize

from repro.errors import ConfigurationError
from repro.svm import RBFKernel, solve_one_class_smo


def _gram(n=20, d=2, seed=0, gamma=0.5):
    x = np.random.default_rng(seed).normal(size=(n, d))
    return RBFKernel(gamma)(x, x)


def _reference_qp(q, nu):
    """Small-scale reference solution via SLSQP."""
    n = q.shape[0]
    c = 1.0 / (nu * n)
    x0 = np.full(n, 1.0 / n)
    res = minimize(
        lambda a: 0.5 * a @ q @ a,
        x0,
        jac=lambda a: q @ a,
        bounds=[(0.0, c)] * n,
        constraints=[{"type": "eq", "fun": lambda a: a.sum() - 1.0,
                      "jac": lambda a: np.ones(n)}],
        method="SLSQP",
        options={"maxiter": 500, "ftol": 1e-12},
    )
    assert res.success, res.message
    return res.x


class TestFeasibility:
    @pytest.mark.parametrize("nu", [0.05, 0.2, 0.5, 0.9, 1.0])
    def test_constraints_hold(self, nu):
        q = _gram()
        result = solve_one_class_smo(q, nu)
        c = 1.0 / (nu * q.shape[0])
        assert result.alpha.sum() == pytest.approx(1.0, abs=1e-9)
        assert result.alpha.min() >= -1e-12
        assert result.alpha.max() <= c + 1e-12

    def test_single_point(self):
        q = np.array([[1.0]])
        result = solve_one_class_smo(q, 0.5)
        assert result.alpha == pytest.approx([1.0])

    def test_tiny_nu_spreads_mass(self):
        q = _gram(n=10)
        result = solve_one_class_smo(q, 0.05)
        # C = 2.0 > 1, a single alpha can carry everything if optimal.
        assert result.alpha.sum() == pytest.approx(1.0)


class TestKKT:
    @pytest.mark.parametrize("nu", [0.2, 0.5, 0.8])
    def test_gradient_structure(self, nu):
        q = _gram(n=25, seed=3)
        result = solve_one_class_smo(q, nu, tol=1e-6)
        assert result.converged
        c = 1.0 / (nu * q.shape[0])
        gradient = q @ result.alpha
        free = (result.alpha > 1e-8) & (result.alpha < c - 1e-8)
        at_zero = result.alpha <= 1e-8
        at_c = result.alpha >= c - 1e-8
        if free.any():
            assert np.allclose(gradient[free], result.rho, atol=1e-4)
        if at_zero.any():
            assert gradient[at_zero].min() >= result.rho - 1e-4
        if at_c.any():
            assert gradient[at_c].max() <= result.rho + 1e-4

    def test_objective_matches_reference_qp(self):
        for nu in (0.3, 0.6):
            q = _gram(n=15, seed=7)
            smo = solve_one_class_smo(q, nu, tol=1e-8)
            ref = _reference_qp(q, nu)
            obj_smo = 0.5 * smo.alpha @ q @ smo.alpha
            obj_ref = 0.5 * ref @ q @ ref
            assert obj_smo == pytest.approx(obj_ref, abs=1e-6)

    @given(seed=st.integers(0, 100), nu=st.floats(0.1, 0.95))
    @settings(max_examples=25, deadline=None)
    def test_property_feasible_and_no_worse_than_uniform(self, seed, nu):
        q = _gram(n=12, seed=seed)
        result = solve_one_class_smo(q, nu, tol=1e-6)
        n = q.shape[0]
        c = 1.0 / (nu * n)
        assert result.alpha.sum() == pytest.approx(1.0, abs=1e-8)
        assert -1e-10 <= result.alpha.min()
        assert result.alpha.max() <= c + 1e-10
        uniform = np.full(n, 1.0 / n)
        if np.all(uniform <= c + 1e-12):
            assert (0.5 * result.alpha @ q @ result.alpha
                    <= 0.5 * uniform @ q @ uniform + 1e-8)


class TestValidation:
    def test_non_square_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_one_class_smo(np.zeros((2, 3)), 0.5)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_one_class_smo(np.zeros((0, 0)), 0.5)

    @pytest.mark.parametrize("nu", [0.0, -0.5, 1.5])
    def test_bad_nu_rejected(self, nu):
        with pytest.raises(ConfigurationError):
            solve_one_class_smo(np.eye(3), nu)

    def test_strict_convergence_error(self):
        from repro.errors import ConvergenceError

        q = _gram(n=30, seed=5)
        with pytest.raises(ConvergenceError):
            solve_one_class_smo(q, 0.5, tol=1e-14, max_iter=2, strict=True)
