"""GramCache: cached columns must equal direct kernel evaluation, the
cache must only compute what it has not seen, and any kernel-parameter
change must invalidate wholesale."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.svm.gram_cache import GramCache
from repro.svm.kernels import (
    LinearKernel,
    PolynomialKernel,
    RBFKernel,
)
from repro.utils import pairwise_sq_dists, row_sq_norms

KERNELS = [
    RBFKernel(0.25),
    LinearKernel(),
    PolynomialKernel(degree=2, gamma=0.5, coef0=1.0),
]


@pytest.fixture()
def x():
    return np.random.default_rng(0).normal(size=(40, 7))


@pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: type(k).__name__)
def test_columns_match_direct_kernel(kernel, x):
    cache = GramCache(x)
    ids = [3, 11, 27, 5]
    rows = np.asarray(ids)
    cols = cache.columns(kernel, ids, rows)
    np.testing.assert_allclose(cols, kernel.compute(x, x[rows]), atol=1e-12)
    # Training Gram is the row gather of the same columns.
    np.testing.assert_allclose(cache.gram(ids, rows),
                               kernel.compute(x[rows], x[rows]), atol=1e-12)


def test_warm_round_computes_only_new_columns(x):
    kernel = RBFKernel(0.5)
    cache = GramCache(x)
    assert cache.ensure(kernel, [1, 2, 3], np.array([1, 2, 3])) == 3
    assert cache.misses == 3 and cache.hits == 0
    # Second round: same ids plus two new ones -> only 2 fresh columns.
    ids = [1, 2, 3, 8, 9]
    assert cache.ensure(kernel, ids, np.asarray(ids)) == 2
    assert cache.misses == 5 and cache.hits == 3
    assert cache.n_cached == 5


def test_params_change_invalidates(x):
    cache = GramCache(x)
    cache.ensure(RBFKernel(0.5), [0, 1], np.array([0, 1]))
    assert cache.params == ("rbf", 0.5)
    # Same family, different gamma -> wholesale invalidation.
    assert cache.ensure(RBFKernel(1.0), [0, 1], np.array([0, 1])) == 2
    assert cache.n_cached == 2
    # Different family -> invalidation again, values match the new kernel.
    cols = cache.columns(LinearKernel(), [0, 1], np.array([0, 1]))
    np.testing.assert_allclose(cols, x @ x[[0, 1]].T, atol=1e-12)


def test_gram_requires_ensure(x):
    cache = GramCache(x)
    with pytest.raises(ConfigurationError, match="ensure"):
        cache.gram([4], np.array([4]))


def test_ids_rows_must_align(x):
    with pytest.raises(ConfigurationError, match="align"):
        GramCache(x).ensure(LinearKernel(), [1, 2], np.array([1]))


def test_drop_and_clear(x):
    cache = GramCache(x)
    cache.ensure(LinearKernel(), [0, 1, 2], np.array([0, 1, 2]))
    cache.drop([1, 99])
    assert cache.n_cached == 2
    cache.clear()
    assert cache.n_cached == 0 and cache.params is None


@pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: type(k).__name__)
def test_blockwise_matches_full(kernel):
    rng = np.random.default_rng(1)
    a, b = rng.normal(size=(33, 5)), rng.normal(size=(6, 5))
    blocked = kernel.compute_blocked(a, b, block_rows=8)
    np.testing.assert_allclose(blocked, kernel.compute(a, b), atol=1e-12)


def test_rbf_norms_reuse_matches():
    rng = np.random.default_rng(2)
    a, b = rng.normal(size=(20, 4)), rng.normal(size=(7, 4))
    kernel = RBFKernel(0.3)
    plain = kernel.compute(a, b)
    reused = kernel.compute(a, b, a_sq=row_sq_norms(a), b_sq=row_sq_norms(b))
    np.testing.assert_allclose(reused, plain, atol=1e-12)
    np.testing.assert_allclose(
        pairwise_sq_dists(a, b, a_sq=row_sq_norms(a), b_sq=row_sq_norms(b)),
        pairwise_sq_dists(a, b), atol=1e-12)


@pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: type(k).__name__)
def test_diag_matches_gram_diagonal(kernel, x):
    np.testing.assert_allclose(kernel.diag(x),
                               np.diag(kernel.compute(x, x)), atol=1e-12)
    cache = GramCache(x)
    np.testing.assert_allclose(cache.diag(kernel), kernel.diag(x), atol=1e-12)
    # Cached diag object is reused while the params key is stable.
    assert cache.diag(kernel) is cache.diag(kernel)


def test_symbolic_gamma_raises_on_diag():
    with pytest.raises(ConfigurationError, match="prepare"):
        RBFKernel("scale").diag(np.ones((2, 2)))
