"""Estimator-level tests for the one-class SVM."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, NotFittedError
from repro.svm import OneClassSVM, RBFKernel


def _blob(n=80, d=2, seed=0, center=0.0):
    return np.random.default_rng(seed).normal(center, 1.0, size=(n, d))


class TestFitPredict:
    def test_inliers_accepted_outliers_rejected(self):
        x = _blob(n=150)
        model = OneClassSVM(nu=0.1, gamma=0.2).fit(x)
        inside = model.predict(np.zeros((1, 2)))
        outside = model.predict(np.array([[15.0, 15.0]]))
        assert inside[0] == 1
        assert outside[0] == -1

    def test_decision_monotone_with_distance(self):
        x = _blob(seed=1)
        model = OneClassSVM(nu=0.2).fit(x)
        radii = np.array([0.0, 2.0, 5.0, 10.0])
        points = np.column_stack([radii, np.zeros_like(radii)])
        scores = model.decision_function(points)
        assert np.all(np.diff(scores) < 0)

    @pytest.mark.parametrize("nu", [0.1, 0.3, 0.5])
    def test_training_outlier_fraction_close_to_nu(self, nu):
        x = _blob(n=300, seed=2)
        model = OneClassSVM(nu=nu).fit(x)
        fraction = float(np.mean(model.predict(x) == -1))
        # nu is an asymptotic bound; allow generous slack.
        assert fraction == pytest.approx(nu, abs=0.12)

    def test_support_vector_fraction_at_least_nu(self):
        x = _blob(n=200, seed=3)
        nu = 0.4
        model = OneClassSVM(nu=nu).fit(x)
        assert len(model.support_) / len(x) >= nu - 0.05

    def test_decision_function_on_training_support(self):
        """Free support vectors sit on the decision boundary."""
        x = _blob(n=60, seed=4)
        model = OneClassSVM(nu=0.3, tol=1e-6).fit(x)
        scores = model.decision_function(model.support_vectors_)
        c = 1.0 / (model.nu * len(x))
        free = (model.dual_coef_ > 1e-8) & (model.dual_coef_ < c - 1e-8)
        if free.any():
            assert np.abs(scores[free]).max() < 1e-3

    def test_two_clusters_both_covered(self):
        rng = np.random.default_rng(5)
        x = np.vstack([
            rng.normal(-5, 0.5, size=(60, 2)),
            rng.normal(5, 0.5, size=(60, 2)),
        ])
        model = OneClassSVM(nu=0.1, gamma=0.5).fit(x)
        probes = np.array([[-5.0, -5.0], [5.0, 5.0], [0.0, 0.0]])
        preds = model.predict(probes)
        assert preds[0] == 1 and preds[1] == 1
        assert preds[2] == -1  # the gap between clusters is outside


class TestKernels:
    def test_linear_kernel_works(self):
        x = _blob(seed=6) + 5.0
        model = OneClassSVM(nu=0.3, kernel="linear").fit(x)
        scores = model.decision_function(x)
        assert np.isfinite(scores).all()

    def test_poly_kernel_works(self):
        x = _blob(seed=7)
        model = OneClassSVM(nu=0.3, kernel="poly", gamma=0.5).fit(x)
        assert np.isfinite(model.decision_function(x)).all()

    def test_custom_kernel_instance(self):
        x = _blob(seed=8)
        model = OneClassSVM(nu=0.2, kernel=RBFKernel(0.3)).fit(x)
        assert model.predict(np.zeros((1, 2)))[0] == 1

    def test_paper_sigma_parameterisation(self):
        x = _blob(seed=9)
        model = OneClassSVM(nu=0.2,
                            kernel=RBFKernel.from_sigma(1.0)).fit(x)
        assert model.is_fitted


class TestValidation:
    @pytest.mark.parametrize("nu", [0.0, -0.1, 1.0001])
    def test_bad_nu(self, nu):
        with pytest.raises(ConfigurationError):
            OneClassSVM(nu=nu)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            OneClassSVM().decision_function(np.zeros((1, 2)))

    def test_dimension_mismatch(self):
        model = OneClassSVM().fit(_blob())
        with pytest.raises(ConfigurationError, match="features"):
            model.decision_function(np.zeros((1, 5)))

    def test_1d_input_promoted_to_row(self):
        model = OneClassSVM(nu=0.3).fit(_blob())
        assert model.decision_function(np.zeros(2)).shape == (1,)


class TestDeterminism:
    def test_fit_is_deterministic(self):
        x = _blob(seed=10)
        a = OneClassSVM(nu=0.25).fit(x)
        b = OneClassSVM(nu=0.25).fit(x)
        assert np.array_equal(a.support_, b.support_)
        assert a.rho_ == pytest.approx(b.rho_)

    @given(nu=st.floats(0.05, 0.95), seed=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_property_scores_finite_anywhere(self, nu, seed):
        x = _blob(n=40, seed=seed)
        model = OneClassSVM(nu=nu).fit(x)
        probes = np.random.default_rng(seed + 1).normal(0, 20, size=(10, 2))
        assert np.isfinite(model.decision_function(probes)).all()
