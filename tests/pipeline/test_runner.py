"""PipelineRunner: fingerprint invalidation, suffix recompute, reuse.

The invalidation contract under test (ISSUE 2): identical configs are
served byte-identically from the store; changing one upstream stage's
config recomputes exactly the dependent suffix — asserted through the
per-run stage-execution counters the runner reports.
"""

import pickle

import numpy as np
import pytest

from repro.events.features import SamplingConfig
from repro.pipeline import (
    DiskArtifactStore,
    MemoryArtifactStore,
    OracleConfig,
    PipelineConfig,
    PipelineRunner,
    SegmentConfig,
    SeriesConfig,
    WindowConfig,
    clip_digest,
)


def oracle_config(**over) -> PipelineConfig:
    kwargs = dict(mode="oracle")
    kwargs.update(over)
    return PipelineConfig(**kwargs)


def dataset_bytes(artifacts) -> bytes:
    return pickle.dumps(artifacts.dataset)


class TestReuse:
    def test_identical_config_serves_from_store(self, small_tunnel,
                                                tmp_path):
        store = DiskArtifactStore(tmp_path / "cache")
        cold = PipelineRunner(oracle_config(), store=store).run(small_tunnel)
        warm = PipelineRunner(oracle_config(), store=store).run(small_tunnel)
        assert all(runs >= 1 for runs in cold.stage_runs.values())
        assert all(runs == 0 for runs in warm.stage_runs.values())
        assert dataset_bytes(warm) == dataset_bytes(cold)
        np.testing.assert_array_equal(warm.dataset.instance_matrix(),
                                      cold.dataset.instance_matrix())

    def test_tracks_recovered_from_store(self, small_tunnel, tmp_path):
        store = DiskArtifactStore(tmp_path / "cache")
        cold = PipelineRunner(oracle_config(), store=store).run(small_tunnel)
        warm = PipelineRunner(oracle_config(), store=store).run(small_tunnel)
        assert len(warm.tracks) == len(cold.tracks)
        for a, b in zip(cold.tracks, warm.tracks):
            assert a.track_id == b.track_id
            np.testing.assert_array_equal(a.point_array(), b.point_array())

    def test_no_store_runs_everything(self, small_tunnel):
        artifacts = PipelineRunner(oracle_config()).run(small_tunnel)
        assert all(runs == 1 for runs in artifacts.stage_runs.values())


class TestSuffixInvalidation:
    def test_window_change_recomputes_windows_only(self, small_tunnel):
        store = MemoryArtifactStore()
        PipelineRunner(oracle_config(), store=store).run(small_tunnel)
        swept = PipelineRunner(
            oracle_config(windows=WindowConfig(window_size=5)),
            store=store).run(small_tunnel)
        assert swept.stage_runs == {"oracle": 0, "series": 0, "windows": 1, "index": 1}

    def test_step_change_recomputes_windows_only(self, small_tunnel):
        store = MemoryArtifactStore()
        PipelineRunner(oracle_config(), store=store).run(small_tunnel)
        swept = PipelineRunner(
            oracle_config(windows=WindowConfig(step=1)),
            store=store).run(small_tunnel)
        assert swept.stage_runs == {"oracle": 0, "series": 0, "windows": 1, "index": 1}

    def test_sampling_change_recomputes_series_suffix(self, small_tunnel):
        store = MemoryArtifactStore()
        PipelineRunner(oracle_config(), store=store).run(small_tunnel)
        swept = PipelineRunner(
            oracle_config(
                series=SeriesConfig(SamplingConfig(sampling_rate=8))),
            store=store).run(small_tunnel)
        assert swept.stage_runs == {"oracle": 0, "series": 1, "windows": 1, "index": 1}

    def test_oracle_change_recomputes_everything(self, small_tunnel):
        store = MemoryArtifactStore()
        PipelineRunner(oracle_config(), store=store).run(small_tunnel)
        swept = PipelineRunner(
            oracle_config(oracle=OracleConfig(jitter=0.1)),
            store=store).run(small_tunnel)
        assert swept.stage_runs == {"oracle": 1, "series": 1, "windows": 1, "index": 1}

    def test_event_change_recomputes_windows_only(self, small_tunnel):
        store = MemoryArtifactStore()
        PipelineRunner(oracle_config(), store=store).run(small_tunnel)
        swept = PipelineRunner(
            oracle_config(windows=WindowConfig(event="speeding")),
            store=store).run(small_tunnel)
        assert swept.stage_runs == {"oracle": 0, "series": 0, "windows": 1, "index": 1}
        assert swept.dataset.event_name == "speeding"

    def test_different_clip_misses_entirely(self, small_tunnel,
                                            small_intersection):
        store = MemoryArtifactStore()
        PipelineRunner(oracle_config(), store=store).run(small_tunnel)
        other = PipelineRunner(oracle_config(),
                               store=store).run(small_intersection)
        assert all(runs == 1 for runs in other.stage_runs.values())


@pytest.mark.slow
class TestVisionInvalidation:
    def test_vision_sweep_reuses_front_end(self, small_tunnel, tmp_path):
        store = DiskArtifactStore(tmp_path / "cache")
        cold = PipelineRunner(PipelineConfig(), store=store).run(small_tunnel)
        assert cold.stage_runs["render"] == 1
        swept = PipelineRunner(
            PipelineConfig(windows=WindowConfig(window_size=5)),
            store=store).run(small_tunnel)
        # Render is lazy/uncacheable but is only needed when Segment
        # actually runs; a windows-only change replays everything else.
        assert swept.stage_runs == {
            "render": 0, "segment": 0, "track": 0, "stitch": 0,
            "series": 0, "windows": 1, "index": 1}

    def test_segment_change_recomputes_vision_suffix(self, small_tunnel,
                                                     tmp_path):
        store = DiskArtifactStore(tmp_path / "cache")
        PipelineRunner(PipelineConfig(), store=store).run(small_tunnel)
        swept = PipelineRunner(
            PipelineConfig(segment=SegmentConfig(min_area=30)),
            store=store).run(small_tunnel)
        assert swept.stage_runs == {
            "render": 1, "segment": 1, "track": 1, "stitch": 1,
            "series": 1, "windows": 1, "index": 1}


class TestClipDigest:
    def test_digest_deterministic(self, small_tunnel):
        assert clip_digest(small_tunnel) == clip_digest(small_tunnel)

    def test_digest_separates_clips(self, small_tunnel, small_intersection):
        assert clip_digest(small_tunnel) != clip_digest(small_intersection)

    def test_chain_keys_unique_per_stage(self, small_tunnel):
        runner = PipelineRunner(oracle_config())
        keys = runner.chain_keys(small_tunnel)
        assert len(keys) == len(set(keys)) == len(runner.stages)
