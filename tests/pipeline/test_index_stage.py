"""The Index stage: content-addressed IVF artifacts per clip.

Pins the acceptance contract of the sublinear-nomination work: the
index is fingerprint-keyed behind every upstream stage (an upstream
config edit rebuilds it), a corrupted index blob is quarantined and
recomputed through the store's existing self-healing path, and the
stage-built index is bit-identical to one built lazily at query time
from the same dataset.
"""

import numpy as np
import pytest

from repro.core.sharded import CorpusShard, ShardSpec
from repro.index import IVFIndex, build_index_for_dataset
from repro.pipeline import (
    DiskArtifactStore,
    IndexConfig,
    MemoryArtifactStore,
    PipelineConfig,
    PipelineRunner,
    WindowConfig,
)


def oracle_config(**over) -> PipelineConfig:
    kwargs = dict(mode="oracle")
    kwargs.update(over)
    return PipelineConfig(**kwargs)


def _assert_same_index(a: IVFIndex, b: IVFIndex) -> None:
    np.testing.assert_array_equal(a.centroids, b.centroids)
    np.testing.assert_array_equal(a.cell_starts, b.cell_starts)
    np.testing.assert_array_equal(a.cell_rows, b.cell_rows)
    np.testing.assert_array_equal(a.row_bags, b.row_bags)
    assert a.n_bags == b.n_bags and a.params == b.params


class TestIndexArtifact:
    def test_run_produces_index(self, small_tunnel):
        artifacts = PipelineRunner(oracle_config()).run(small_tunnel)
        index = artifacts.index
        assert isinstance(index, IVFIndex)
        assert index.n_bags == len(artifacts.dataset.bags)
        assert index.n_rows == artifacts.dataset.n_instances

    def test_stage_matches_lazy_query_build(self, small_tunnel):
        """The ingest-time artifact and a query-time lazy build must be
        bit-identical — the two paths may never disagree."""
        cfg = oracle_config()
        artifacts = PipelineRunner(cfg).run(small_tunnel)
        lazy = build_index_for_dataset(
            artifacts.dataset, n_cells=cfg.index.n_cells,
            seed=cfg.index.seed, iters=cfg.index.iters)
        _assert_same_index(artifacts.index, lazy)

    def test_prebuilt_artifact_feeds_corpus_shard(self, small_tunnel):
        artifacts = PipelineRunner(oracle_config()).run(small_tunnel)
        d = artifacts.dataset
        spec = ShardSpec(clip_id=d.clip_id, n_bags=len(d.bags),
                         n_instances=d.n_instances, loader=lambda: d,
                         index_loader=lambda: artifacts.index)
        shard = CorpusShard(spec, 0, 0)
        assert shard.ivf_index(n_cells=32, seed=0, iters=15) \
            is artifacts.index


class TestIndexInvalidation:
    def test_index_config_change_recomputes_index_only(self, small_tunnel):
        store = MemoryArtifactStore()
        PipelineRunner(oracle_config(), store=store).run(small_tunnel)
        swept = PipelineRunner(
            oracle_config(index=IndexConfig(n_cells=8)),
            store=store).run(small_tunnel)
        assert swept.stage_runs == {
            "oracle": 0, "series": 0, "windows": 0, "index": 1}
        assert swept.index.n_cells <= 8

    def test_upstream_change_rebuilds_index(self, small_tunnel):
        """Content addressing: editing any upstream stage config must
        invalidate the cached index along with the dataset."""
        store = MemoryArtifactStore()
        PipelineRunner(oracle_config(), store=store).run(small_tunnel)
        swept = PipelineRunner(
            oracle_config(windows=WindowConfig(window_size=5)),
            store=store).run(small_tunnel)
        assert swept.stage_runs["index"] == 1

    def test_identical_config_serves_index_from_store(self, small_tunnel,
                                                      tmp_path):
        store = DiskArtifactStore(tmp_path / "cache")
        cold = PipelineRunner(oracle_config(), store=store).run(small_tunnel)
        warm = PipelineRunner(oracle_config(), store=store).run(small_tunnel)
        assert warm.stage_runs["index"] == 0
        _assert_same_index(warm.index, cold.index)


class TestIndexSelfHealing:
    def test_corrupted_index_blob_quarantined_and_recomputed(
            self, small_tunnel, tmp_path):
        store = DiskArtifactStore(tmp_path / "cache")
        runner = PipelineRunner(oracle_config(), store=store)
        clean = runner.run(small_tunnel)

        key = runner.chain_keys(small_tunnel)[-1]  # index is last
        blob = store._blob(key)
        damaged = bytearray(blob.read_bytes())
        damaged[len(damaged) // 2] ^= 0xFF
        blob.write_bytes(bytes(damaged))

        healer = PipelineRunner(oracle_config(), store=store)
        healed = healer.run(small_tunnel)
        assert healer.integrity_recoveries == 1
        assert any(q["key"] == key for q in store.quarantined)
        _assert_same_index(healed.index, clean.index)
        # the store is healed: a third run serves the fresh blob
        rerun = PipelineRunner(oracle_config(), store=store)
        assert rerun.run(small_tunnel).stage_runs["index"] == 0


@pytest.mark.parametrize("bad", [dict(n_cells=0), dict(iters=0)])
def test_bad_index_config_fails_at_build(small_tunnel, bad):
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        PipelineRunner(oracle_config(index=IndexConfig(**bad))
                       ).run(small_tunnel)
