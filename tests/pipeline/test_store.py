"""Artifact store backends: roundtrip, metadata, resolution."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.pipeline import (
    DiskArtifactStore,
    MemoryArtifactStore,
    resolve_store,
)


@pytest.fixture(params=["memory", "disk"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryArtifactStore()
    return DiskArtifactStore(tmp_path / "cache")


class TestStoreContract:
    def test_roundtrip(self, store):
        value = {"matrix": np.arange(6.0).reshape(2, 3), "label": "x"}
        store.save("a" * 64, value, meta={"stage": "segment",
                                          "clip_id": "clip"})
        assert store.has("a" * 64)
        loaded = store.load("a" * 64)
        np.testing.assert_array_equal(loaded["matrix"], value["matrix"])
        assert loaded["label"] == "x"

    def test_missing_key(self, store):
        assert not store.has("b" * 64)
        with pytest.raises(StorageError):
            store.load("b" * 64)

    def test_overwrite_wins(self, store):
        store.save("c" * 64, 1)
        store.save("c" * 64, 2)
        assert store.load("c" * 64) == 2

    def test_entries_metadata(self, store):
        store.save("d" * 64, [1, 2, 3], meta={"stage": "series",
                                              "clip_id": "tunnel"})
        entries = store.entries()
        assert len(entries) == 1
        assert entries[0]["key"] == "d" * 64
        assert entries[0]["stage"] == "series"
        assert entries[0]["clip_id"] == "tunnel"

    def test_keys_sorted(self, store):
        store.save("f" * 64, 1)
        store.save("e" * 64, 2)
        assert store.keys() == ["e" * 64, "f" * 64]


class TestDiskStore:
    def test_persists_across_instances(self, tmp_path):
        root = tmp_path / "cache"
        DiskArtifactStore(root).save("a1" + "0" * 62, {"x": 1},
                                     meta={"stage": "track"})
        reopened = DiskArtifactStore(root)
        assert reopened.has("a1" + "0" * 62)
        assert reopened.load("a1" + "0" * 62) == {"x": 1}
        assert reopened.entries()[0]["stage"] == "track"

    def test_entry_records_size(self, tmp_path):
        store = DiskArtifactStore(tmp_path / "cache")
        store.save("ab" + "0" * 62, list(range(100)))
        entry = store.entries()[0]
        assert entry["n_bytes"] > 0

    def test_no_tmp_litter(self, tmp_path):
        store = DiskArtifactStore(tmp_path / "cache")
        store.save("cd" + "0" * 62, "value")
        leftovers = list((tmp_path / "cache").rglob(".tmp-*"))
        assert leftovers == []


class TestResolveStore:
    def test_none_and_false(self):
        assert resolve_store(None) is None
        assert resolve_store(False) is None

    def test_path_becomes_disk_store(self, tmp_path):
        resolved = resolve_store(tmp_path / "cache")
        assert isinstance(resolved, DiskArtifactStore)

    def test_store_passthrough(self):
        store = MemoryArtifactStore()
        assert resolve_store(store) is store

    def test_bad_spec_rejected(self):
        with pytest.raises(StorageError):
            resolve_store(42)


class TestAtomicWriteCleanup:
    def test_unlink_failure_is_reported_not_swallowed(self, tmp_path,
                                                      monkeypatch):
        """When the tmp-file cleanup itself fails (read-only fs,
        permission flip), the original error still propagates and the
        leaked tmp file is surfaced through telemetry."""
        from repro.obs import Telemetry, set_telemetry
        from repro.pipeline import store as store_mod

        disk = DiskArtifactStore(tmp_path / "store")

        def broken_replace(src, dst):
            raise OSError("disk full (simulated)")

        def broken_unlink(path):
            raise PermissionError("read-only filesystem (simulated)")

        monkeypatch.setattr(store_mod.os, "replace", broken_replace)
        monkeypatch.setattr(store_mod.os, "unlink", broken_unlink)
        telemetry = Telemetry()
        previous = set_telemetry(telemetry)
        try:
            with pytest.raises(OSError, match="disk full"):
                disk.save("aa" * 8, {"x": 1})
            assert telemetry.counter(
                "store.tmp_unlink_failures").total() == 1
            events = [e for e in telemetry.events
                      if e["name"] == "store.tmp_unlink_failed"]
            assert len(events) == 1
            assert "read-only filesystem" in events[0]["reason"]
        finally:
            set_telemetry(previous)
