"""Ported ablation sweeps: identical results, front end runs once."""

import numpy as np

from repro.eval import build_artifacts
from repro.eval.experiments import ablation_step, ablation_window
from repro.eval.parallel import artifacts_for_seeds
from repro.pipeline import MemoryArtifactStore


class TestSweepEquivalence:
    def test_window_sweep_matches_cold_path(self):
        shared = ablation_window(windows=(2, 3), seed=3)
        cold = ablation_window(windows=(2, 3), seed=3, store=False)
        assert shared.series == cold.series

    def test_step_sweep_matches_cold_path(self):
        shared = ablation_step(seed=3)
        cold = ablation_step(seed=3, store=False)
        assert shared.series == cold.series

    def test_track_stage_runs_once_per_sweep(self, small_tunnel,
                                             monkeypatch):
        import repro.tracking.oracle as oracle_mod

        calls = {"n": 0}
        real = oracle_mod.tracks_from_simulation

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(oracle_mod, "tracks_from_simulation", counting)
        store = MemoryArtifactStore()
        for w in (2, 3, 5, 7):
            build_artifacts(small_tunnel, mode="oracle", window_size=w,
                            store=store)
        assert calls["n"] == 1

    def test_datasets_identical_across_store_kinds(self, small_tunnel,
                                                   tmp_path):
        mem = build_artifacts(small_tunnel, mode="oracle",
                              store=MemoryArtifactStore())
        disk = build_artifacts(small_tunnel, mode="oracle",
                               store=tmp_path / "cache")
        replay = build_artifacts(small_tunnel, mode="oracle",
                                 store=tmp_path / "cache")
        for other in (disk, replay):
            np.testing.assert_array_equal(mem.dataset.instance_matrix(),
                                          other.dataset.instance_matrix())


class TestParallelStore:
    def test_store_dir_roundtrip_matches(self, tmp_path):
        sim_kwargs = dict(n_frames=500, spawn_interval=(60.0, 90.0),
                          n_wall_crashes=2, n_sudden_stops=1)
        cold = artifacts_for_seeds("tunnel", (3,), mode="oracle",
                                   sim_kwargs=sim_kwargs, max_workers=1)
        store_dir = str(tmp_path / "cache")
        first = artifacts_for_seeds("tunnel", (3,), mode="oracle",
                                    sim_kwargs=sim_kwargs, max_workers=1,
                                    store_dir=store_dir)
        warm = artifacts_for_seeds("tunnel", (3,), mode="oracle",
                                   sim_kwargs=sim_kwargs, max_workers=1,
                                   store_dir=store_dir)
        for built in (first, warm):
            np.testing.assert_array_equal(
                cold[3].dataset.instance_matrix(),
                built[3].dataset.instance_matrix())
        assert all(runs == 0 for runs in warm[3].stage_runs.values())
