"""Stage-config fingerprints: stability, sensitivity, validation."""

import pytest

from repro.errors import ConfigurationError
from repro.events.features import SamplingConfig
from repro.pipeline import (
    OracleConfig,
    PipelineConfig,
    RenderConfig,
    SegmentConfig,
    SeriesConfig,
    WindowConfig,
    build_stages,
)


class TestParamsKey:
    def test_equal_configs_equal_keys(self):
        assert (WindowConfig(window_size=5).params_key()
                == WindowConfig(window_size=5).params_key())

    def test_any_field_change_changes_key(self):
        base = SegmentConfig().params_key()
        assert SegmentConfig(use_spcpe=True).params_key() != base
        assert SegmentConfig(min_area=26).params_key() != base
        assert SegmentConfig(max_area=None).params_key() != base

    def test_key_is_hashable_and_deterministic(self):
        key = SeriesConfig(
            sampling=SamplingConfig(sampling_rate=7)).params_key()
        assert hash(key) == hash(key)
        assert key == SeriesConfig(
            sampling=SamplingConfig(sampling_rate=7)).params_key()

    def test_different_config_classes_differ(self):
        # Same (empty-ish) payload, different stage family.
        assert RenderConfig().params_key() != OracleConfig().params_key()

    def test_nested_sampling_config_participates(self):
        a = SeriesConfig(sampling=SamplingConfig(sampling_rate=5))
        b = SeriesConfig(sampling=SamplingConfig(sampling_rate=8))
        assert a.params_key() != b.params_key()


class TestPipelineConfig:
    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(mode="psychic")

    def test_oracle_stitch_rejected(self):
        from repro.pipeline import StitchConfig

        with pytest.raises(ConfigurationError):
            PipelineConfig(mode="oracle", stitch=StitchConfig(enabled=True))

    def test_stage_chain_shapes(self):
        vision = [s.name for s in build_stages(PipelineConfig())]
        oracle = [s.name
                  for s in build_stages(PipelineConfig(mode="oracle"))]
        assert vision == ["render", "segment", "track", "stitch",
                          "series", "windows", "index"]
        assert oracle == ["oracle", "series", "windows", "index"]

    def test_from_build_kwargs_roundtrip(self):
        cfg = PipelineConfig.from_build_kwargs(
            event="speeding", mode="oracle", window_size=5, step=1,
            oracle_jitter=0.1, seed=9)
        assert cfg.windows.event == "speeding"
        assert cfg.windows.window_size == 5
        assert cfg.windows.step == 1
        assert cfg.oracle.jitter == 0.1
        assert cfg.oracle.seed == 9

    def test_event_model_instance_accepted(self):
        from repro.events.models import AccidentModel

        cfg = PipelineConfig.from_build_kwargs(event=AccidentModel(),
                                               mode="oracle")
        assert cfg.windows.event == "accident"
        assert isinstance(cfg.resolve_event_model(), AccidentModel)
