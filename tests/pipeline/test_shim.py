"""The build_artifacts compatibility shim and ClipArtifacts caching."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.eval import build_artifacts
from repro.pipeline import MemoryArtifactStore


class TestShim:
    def test_store_backed_equals_cold(self, small_tunnel):
        store = MemoryArtifactStore()
        build_artifacts(small_tunnel, mode="oracle", store=store)
        warm = build_artifacts(small_tunnel, mode="oracle", window_size=5,
                               store=store)
        cold = build_artifacts(small_tunnel, mode="oracle", window_size=5)
        assert ([b.bag_id for b in warm.dataset.bags]
                == [b.bag_id for b in cold.dataset.bags])
        np.testing.assert_array_equal(warm.dataset.instance_matrix(),
                                      cold.dataset.instance_matrix())
        assert warm.relevant_bag_ids == cold.relevant_bag_ids

    def test_oracle_stitch_rejected(self, small_tunnel):
        with pytest.raises(ConfigurationError, match="stitch"):
            build_artifacts(small_tunnel, mode="oracle", stitch=True)

    def test_bad_mode_rejected(self, small_tunnel):
        with pytest.raises(ConfigurationError):
            build_artifacts(small_tunnel, mode="psychic")

    def test_sampling_and_event_forwarded(self, small_tunnel):
        from repro.events.features import SamplingConfig

        art = build_artifacts(small_tunnel, mode="oracle", event="speeding",
                              sampling=SamplingConfig(sampling_rate=8))
        assert art.dataset.event_name == "speeding"
        assert art.dataset.sampling_rate == 8


class TestRelevantBagIdsCache:
    def test_resolved_once(self, small_tunnel, monkeypatch):
        import repro.pipeline.artifacts as artifacts_mod

        art = build_artifacts(small_tunnel, mode="oracle")
        calls = {"n": 0}
        real = artifacts_mod.event_model_for

        def counting(name):
            calls["n"] += 1
            return real(name)

        monkeypatch.setattr(artifacts_mod, "event_model_for", counting)
        first = art.relevant_bag_ids
        second = art.relevant_bag_ids
        assert first is second
        assert calls["n"] == 1

    def test_contents_unchanged_by_caching(self, small_tunnel):
        art = build_artifacts(small_tunnel, mode="oracle")
        model_kinds = {"wall_crash", "sudden_stop", "collision"}
        for bag_id in art.relevant_bag_ids:
            bag = art.dataset.bag_by_id(bag_id)
            assert art.ground_truth.label_window(
                bag.frame_lo, bag.frame_hi, frozenset(model_kinds))
