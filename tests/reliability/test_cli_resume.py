"""The --resume flag on the simulate/experiment CLI commands."""

import json

from repro.cli import main


def _simulate(tmp_path, **overrides):
    argv = ["simulate", "--scenario", "tunnel", "--frames", "300",
            "--seed", "3", "--db", str(tmp_path / "v.db"),
            "--mode", "oracle",
            "--artifact-cache", str(tmp_path / "cache"),
            "--resume", str(tmp_path / "man.json")]
    for key, value in overrides.items():
        argv += [f"--{key.replace('_', '-')}", str(value)]
    return main(argv)


class TestSimulateResume:
    def test_second_run_skips(self, tmp_path, capsys):
        assert _simulate(tmp_path) == 0
        out = capsys.readouterr().out
        assert "recorded completion" in out
        manifest = json.loads((tmp_path / "man.json").read_text())
        assert len(manifest["tasks"]) == 1

        assert _simulate(tmp_path) == 0
        out = capsys.readouterr().out
        assert "skipping" in out
        assert "ingested" not in out

    def test_different_recipe_is_not_skipped(self, tmp_path, capsys):
        assert _simulate(tmp_path) == 0
        capsys.readouterr()
        assert _simulate(tmp_path, seed="4") == 0
        out = capsys.readouterr().out
        assert "ingested" in out
        manifest = json.loads((tmp_path / "man.json").read_text())
        assert len(manifest["tasks"]) == 2


class TestExperimentResume:
    def test_unsupported_experiment_fails_cleanly(self, tmp_path, capsys):
        code = main(["experiment", "--name", "figure8",
                     "--resume", str(tmp_path / "man.json")])
        assert code == 1
        assert "does not support --resume" in capsys.readouterr().err

    def test_seeds_rejected_for_single_seed_experiments(self, tmp_path,
                                                        capsys):
        code = main(["experiment", "--name", "figure8", "--seeds", "0,1"])
        assert code == 1
        assert "does not take --seeds" in capsys.readouterr().err
