"""Fault injection against the self-healing DiskArtifactStore.

Corruption of any stored blob — a flipped byte, a truncation, a
zero-byte file, an orphaned write — must never change final pipeline
outputs: the store quarantines the damage, reports a miss, and the
runner recomputes to byte-identical artifacts.
"""

import hashlib

import pytest

from repro.errors import IntegrityError, StorageError
from repro.eval import build_artifacts
from repro.pipeline import DiskArtifactStore, PipelineRunner
from repro.sim import tunnel


def _sim():
    return tunnel(n_frames=300, seed=5, n_wall_crashes=1, n_sudden_stops=1)


def _store_digests(store):
    """sha256 of every blob file, keyed by store key."""
    return {key: hashlib.sha256(store._blob(key).read_bytes()).hexdigest()
            for key in store.keys()}


@pytest.fixture()
def populated(tmp_path):
    store = DiskArtifactStore(tmp_path / "store")
    artifacts = build_artifacts(_sim(), mode="oracle", store=store)
    return store, artifacts


class TestShallowChecks:
    def test_zero_byte_blob_is_a_miss_and_quarantined(self, populated):
        store, _ = populated
        key = store.keys()[0]
        store._blob(key).write_bytes(b"")
        assert store.has(key) is False
        assert (store.root / "quarantine" / f"{key}.pkl").exists()
        assert store.quarantined == [{"key": key,
                                      "problem": "size-mismatch"}]
        assert key not in store.keys()

    def test_truncated_blob_is_a_miss(self, populated):
        store, _ = populated
        key = store.keys()[0]
        blob = store._blob(key)
        blob.write_bytes(blob.read_bytes()[: blob.stat().st_size // 2])
        assert store.has(key) is False
        assert store.quarantined[0]["problem"] == "size-mismatch"

    def test_orphan_blob_without_sidecar(self, populated):
        store, _ = populated
        key = store.keys()[0]
        store._sidecar(key).unlink()
        # entries() flags the orphan instead of hiding it ...
        flagged = [e for e in store.entries() if e.get("orphan")]
        assert [e["key"] for e in flagged] == [key]
        # ... and a cache probe quarantines it as unverifiable.
        assert store.has(key) is False
        assert store.quarantined[0]["problem"] == "missing-sidecar"

    def test_unreadable_sidecar(self, populated):
        store, _ = populated
        key = store.keys()[0]
        store._sidecar(key).write_text("{not json")
        assert store.has(key) is False
        assert store.quarantined[0]["problem"] == "bad-sidecar"

    def test_healthy_entries_unaffected(self, populated):
        store, _ = populated
        assert all(store.has(k) for k in store.keys())
        assert store.quarantined == []


class TestChecksumOnLoad:
    def test_flipped_byte_caught_and_quarantined(self, populated):
        store, _ = populated
        key = store.keys()[0]
        blob = store._blob(key)
        corrupt = bytearray(blob.read_bytes())
        corrupt[len(corrupt) // 2] ^= 0xFF
        blob.write_bytes(bytes(corrupt))
        # Size unchanged: the cheap probe cannot see the damage ...
        assert store.has(key) is True
        # ... but the checksum on load does.
        with pytest.raises(IntegrityError, match="quarantined"):
            store.load(key)
        assert store.quarantined[0]["problem"] == "checksum-mismatch"
        quarantined = store.root / "quarantine" / f"{key}.json"
        assert "checksum-mismatch" in quarantined.read_text()

    def test_missing_key_still_plain_storage_error(self, populated):
        store, _ = populated
        with pytest.raises(StorageError, match="no artifact"):
            store.load("0" * 64)
        assert store.quarantined == []


def _assert_same_dataset(a, b):
    import numpy as np

    assert [bag.bag_id for bag in a.bags] == [bag.bag_id for bag in b.bags]
    assert a.n_instances == b.n_instances
    for bag_a, bag_b in zip(a.bags, b.bags):
        assert bag_a.frame_range == bag_b.frame_range
        np.testing.assert_array_equal(bag_a.instance_matrix(),
                                      bag_b.instance_matrix())


class TestRunnerSelfHealing:
    def test_corruption_never_changes_outputs(self, tmp_path):
        """Flip one byte in every stored blob in turn: outputs must stay
        identical to a clean run, and verify()+rebuild must restore the
        store to byte-identical blobs."""
        sim = _sim()
        clean = DiskArtifactStore(tmp_path / "clean")
        reference_artifacts = build_artifacts(sim, mode="oracle",
                                              store=clean)
        reference = _store_digests(clean)

        victim = DiskArtifactStore(tmp_path / "victim")
        build_artifacts(sim, mode="oracle", store=victim)
        assert _store_digests(victim) == reference

        for key in sorted(reference):
            blob = victim._blob(key)
            corrupt = bytearray(blob.read_bytes())
            corrupt[len(corrupt) // 3] ^= 0x01
            blob.write_bytes(bytes(corrupt))

            # Serving is never affected, whichever blob is damaged.
            rebuilt = build_artifacts(sim, mode="oracle", store=victim)
            _assert_same_dataset(rebuilt.dataset,
                                 reference_artifacts.dataset)
            # An audit sweep + rebuild heals the store byte-for-byte
            # (blobs that are skipped-but-never-loaded on resume can
            # otherwise carry damage silently; verify() is their check).
            victim.verify(repair=True)
            build_artifacts(sim, mode="oracle", store=victim)
            assert _store_digests(victim) == reference, key

    def test_deep_corruption_demotes_resume_to_recompute(self, tmp_path):
        from repro.pipeline import PipelineConfig

        sim = _sim()
        store = DiskArtifactStore(tmp_path / "store")
        first = build_artifacts(sim, mode="oracle", store=store)
        assert sum(first.stage_runs.values()) >= 1

        config = PipelineConfig.from_build_kwargs(mode="oracle")
        runner = PipelineRunner(config, store=store)
        # Corrupt the final stage's blob: the resume path must load it,
        # trip the checksum, and demote the whole run to a recompute.
        key = runner.chain_keys(sim)[-1]
        blob = store._blob(key)
        corrupt = bytearray(blob.read_bytes())
        corrupt[4] ^= 0xFF
        blob.write_bytes(bytes(corrupt))

        rebuilt = runner.run(sim)
        assert runner.integrity_recoveries == 1
        assert sum(rebuilt.stage_runs.values()) >= 1
        # The store healed: the same runner now resumes cleanly.
        again = runner.run(sim)
        assert runner.integrity_recoveries == 1
        assert sum(again.stage_runs.values()) == 0
        _assert_same_dataset(rebuilt.dataset, again.dataset)


class TestVerifySweep:
    def test_audit_reports_and_repairs(self, populated):
        store, _ = populated
        keys = store.keys()
        flipped, truncated = keys[0], keys[1]
        blob = store._blob(flipped)
        corrupt = bytearray(blob.read_bytes())
        corrupt[0] ^= 0x10
        blob.write_bytes(bytes(corrupt))
        store._blob(truncated).write_bytes(b"")
        # A sidecar whose blob vanished (interrupted delete).
        ghost = "ff" * 32
        store._blob(ghost).parent.mkdir(parents=True, exist_ok=True)
        store.save(ghost, {"x": 1})
        store._blob(ghost).unlink()

        report_only = store.verify(repair=False)
        assert {i["problem"] for i in report_only.issues} == {
            "checksum-mismatch", "size-mismatch", "missing-blob"}
        assert all(i["action"] == "reported" for i in report_only.issues)
        assert store.has(flipped)  # nothing moved yet (size intact)

        audit = store.verify(repair=True)
        assert audit.checked == len(keys) + 1
        assert audit.ok == len(keys) - 2
        assert not audit.healthy
        by_key = {i["key"]: i for i in audit.issues}
        assert by_key[flipped]["problem"] == "checksum-mismatch"
        assert by_key[truncated]["problem"] == "size-mismatch"
        assert by_key[ghost]["problem"] == "missing-blob"
        assert all(i["action"] == "quarantined" for i in audit.issues)

        # The store is healthy again afterwards.
        assert store.verify(repair=False).healthy
        assert flipped not in store.keys()

    def test_clean_store_audits_clean(self, populated):
        store, _ = populated
        audit = store.verify()
        assert audit.healthy
        assert audit.checked == audit.ok == len(store.keys())
