"""Deterministic fault injection: plans, seams, and real error types.

The harness's whole value is determinism — the same seed must fire the
same faults on the same calls, run after run — and fidelity: injected
faults must surface through the production error taxonomy
(IntegrityError from the store's own checksum path, DatabaseBusyError
from the catalog boundary), not as synthetic stand-ins.
"""

import pytest

from repro.db.database import VideoDatabase
from repro.db.schema import ClipRecord
from repro.errors import (
    ConfigurationError,
    DatabaseBusyError,
    IntegrityError,
    RetryableError,
    ShardUnavailableError,
)
from repro.obs import Telemetry, get_telemetry, set_telemetry
from repro.pipeline.store import DiskArtifactStore, MemoryArtifactStore
from repro.reliability import FaultInjector, FaultPlan, FaultRule


@pytest.fixture(autouse=True)
def fresh_telemetry():
    previous = set_telemetry(Telemetry())
    yield
    set_telemetry(previous)


def _clip_record(clip_id="clip-1"):
    return ClipRecord(clip_id=clip_id, location="I-4", camera="cam-0",
                      start_time="", fps=25.0, n_frames=100,
                      width=320, height=240)


class TestFaultPlan:
    def test_same_seed_replays_identical_schedule(self):
        def schedule(seed):
            plan = FaultPlan([FaultRule(op="store.load", kind="io-error",
                                        rate=0.3)], seed=seed)
            return [plan.decide("store.load", "k", i, {}) is not None
                    for i in range(1, 200)]

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)
        # Rate is honored in the long run, not just vacuously 0 or 1.
        fired = sum(schedule(7))
        assert 30 < fired < 90

    def test_explicit_calls_always_fire(self):
        plan = FaultPlan([FaultRule(op="shard.load", kind="io-error",
                                    calls=(2, 5))])
        hits = [i for i in range(1, 8)
                if plan.decide("shard.load", "b", i, {}) is not None]
        assert hits == [2, 5]

    def test_after_skips_warmup_and_limit_caps(self):
        plan = FaultPlan([FaultRule(op="db.execute", kind="busy",
                                    rate=1.0, after=3, limit=2)])
        fired = {}
        hits = []
        for i in range(1, 10):
            rule = plan.decide("db.execute", "", i, fired)
            if rule is not None:
                fired[0] = fired.get(0, 0) + 1
                hits.append(i)
        assert hits == [4, 5]  # warm-up honored, then capped at 2

    def test_key_substring_filters(self):
        plan = FaultPlan([FaultRule(op="store.load", kind="io-error",
                                    rate=1.0, key_substring="bad")])
        assert plan.decide("store.load", "good-key", 1, {}) is None
        assert plan.decide("store.load", "bad-key", 1, {}) is not None

    def test_first_matching_rule_wins(self):
        plan = FaultPlan([
            FaultRule(op="store.load", kind="latency", rate=1.0,
                      key_substring="slow"),
            FaultRule(op="store.load", kind="io-error", rate=1.0),
        ])
        assert plan.decide("store.load", "slow-9", 1, {}).kind == "latency"
        assert plan.decide("store.load", "other", 1, {}).kind == "io-error"

    @pytest.mark.parametrize("kwargs", [
        {"op": "nope", "kind": "busy"},
        {"op": "store.load", "kind": "segfault"},
        {"op": "store.load", "kind": "busy", "rate": 1.5},
        {"op": "store.load", "kind": "busy", "limit": -1},
        {"op": "store.load", "kind": "latency", "latency_s": -0.1},
    ])
    def test_rule_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultRule(**kwargs)


class TestInjectorCore:
    def test_disabled_injector_passes_everything(self):
        injector = FaultInjector(FaultPlan(
            [FaultRule(op="store.load", kind="io-error", rate=1.0)]))
        injector.enabled = False
        assert injector.check("store.load", key="k") is None
        assert injector.injected == []

    def test_injected_log_and_counter(self):
        injector = FaultInjector(FaultPlan(
            [FaultRule(op="store.save", kind="io-error", calls=(2,))]))
        assert injector.check("store.save", key="a") is None
        with pytest.raises(OSError):
            injector.check("store.save", key="b")
        assert [(f.op, f.key, f.call_index, f.kind)
                for f in injector.injected] \
            == [("store.save", "b", 2, "io-error")]
        assert injector.counts() == {"store.save": 2}
        assert get_telemetry().counter("faults.injected").value(
            op="store.save", kind="io-error") == 1

    def test_latency_uses_injected_sleep(self):
        naps = []
        injector = FaultInjector(
            FaultPlan([FaultRule(op="store.has", kind="latency",
                                 rate=1.0, latency_s=0.25)]),
            sleep=naps.append)
        assert injector.check("store.has") == "latency"
        assert naps == [0.25]


class TestStoreSeam:
    def test_corrupt_flips_real_bytes_and_store_quarantines(self, tmp_path):
        """The production checksum/quarantine path fires, not a mock."""
        store = DiskArtifactStore(tmp_path / "store")
        store.save("deadbeef", {"stage": "windows", "x": [1, 2, 3]})
        injector = FaultInjector(FaultPlan(
            [FaultRule(op="store.load", kind="corrupt", calls=(1,))]))
        faulty = injector.wrap_artifact_store(store)
        with pytest.raises(IntegrityError, match="checksum-mismatch"):
            faulty.load("deadbeef")
        assert store.quarantined == [
            {"key": "deadbeef", "problem": "checksum-mismatch"}]
        # The blob was moved aside: the next probe is a clean miss and
        # the pipeline recomputes instead of serving corruption.
        assert not faulty.has("deadbeef")
        store.save("deadbeef", {"stage": "windows", "x": [1, 2, 3]})
        assert faulty.load("deadbeef")["x"] == [1, 2, 3]

    def test_corrupt_on_memory_store_raises_directly(self):
        store = MemoryArtifactStore()
        store.save("k", 42)
        injector = FaultInjector(FaultPlan(
            [FaultRule(op="store.load", kind="corrupt", calls=(1,))]))
        faulty = injector.wrap_artifact_store(store)
        with pytest.raises(IntegrityError, match="injected corruption"):
            faulty.load("k")
        assert faulty.load("k") == 42  # only call 1 faults

    def test_io_error_on_save(self, tmp_path):
        injector = FaultInjector(FaultPlan(
            [FaultRule(op="store.save", kind="io-error", rate=1.0)]))
        faulty = injector.wrap_artifact_store(
            DiskArtifactStore(tmp_path / "store"))
        with pytest.raises(OSError, match="injected I/O error"):
            faulty.save("k", 1)
        assert faulty.keys() == []


class TestShardSeam:
    def test_wrapped_loader_feeds_quarantine_machinery(self):
        from repro.core.sharded import ShardedCorpus
        from tests.core.test_sharded import _clip, _specs

        specs = _specs([_clip("a", 6, seed=1), _clip("b", 6, seed=2)])
        injector = FaultInjector(FaultPlan(
            [FaultRule(op="shard.load", kind="io-error", rate=1.0,
                       key_substring="b", limit=1)]))
        corpus = ShardedCorpus(injector.wrap_shard_specs(specs),
                               corpus_id="merged:faulty")
        assert corpus.shard("a").clip_id == "a"  # untouched shard loads
        with pytest.raises(ShardUnavailableError):
            corpus.shard("b")
        assert corpus.quarantined_clip_ids == ["b"]


class TestDbSeam:
    def test_busy_fault_surfaces_as_retryable_busy_error(self):
        injector = FaultInjector(FaultPlan(
            [FaultRule(op="db.execute", kind="busy", rate=1.0,
                       key_substring="INSERT OR REPLACE INTO clips")]))
        db = VideoDatabase(connection_factory=injector.connect)
        with pytest.raises(DatabaseBusyError) as err:
            db.add_clip(_clip_record())
        assert isinstance(err.value, RetryableError)
        assert "locked" in str(err.value)
        # Reads that don't match the rule still work.
        assert db.clips() == []

    def test_zero_rules_behaves_like_plain_sqlite(self):
        injector = FaultInjector(FaultPlan())
        db = VideoDatabase(connection_factory=injector.connect)
        db.add_clip(_clip_record())
        assert [c.clip_id for c in db.clips()] == ["clip-1"]
        assert injector.injected == []
        assert injector.counts().get("db.execute", 0) > 0
