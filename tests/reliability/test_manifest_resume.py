"""RunManifest + resumable multi-seed sweeps (kill-and-resume)."""

import json

import pytest

from repro.eval import parallel
from repro.eval.parallel import IngestTask, artifacts_for_seeds
from repro.reliability import RunManifest, task_fingerprint

SIM_KWARGS = {"n_frames": 300, "n_wall_crashes": 1, "n_sudden_stops": 1}


def _sweep(tmp_path, seeds, manifest=None, **overrides):
    kwargs = dict(scenario="tunnel", seeds=seeds, mode="oracle",
                  max_workers=1, sim_kwargs=SIM_KWARGS,
                  store_dir=str(tmp_path / "store"), manifest=manifest)
    kwargs.update(overrides)
    return artifacts_for_seeds(**kwargs)


class TestManifest:
    def test_round_trip(self, tmp_path):
        man = RunManifest(tmp_path / "man.json")
        assert len(man) == 0 and not man.is_done("abc")
        man.mark_done("abc", {"seed": 1})
        assert man.is_done("abc") and len(man) == 1
        assert man.entries()["abc"]["seed"] == 1
        man.discard("abc")
        assert not man.is_done("abc")

    def test_file_is_valid_versioned_json(self, tmp_path):
        man = RunManifest(tmp_path / "man.json")
        man.mark_done("abc")
        data = json.loads((tmp_path / "man.json").read_text())
        assert data["version"] == 1
        assert "abc" in data["tasks"]

    def test_unreadable_manifest_resumes_nothing(self, tmp_path):
        path = tmp_path / "man.json"
        path.write_text("{torn write")
        man = RunManifest(path)
        with pytest.warns(RuntimeWarning, match="unreadable run manifest"):
            assert man.entries() == {}
        # Marking progress rewrites it into a valid manifest (the merge
        # re-reads the torn file, so it warns once more).
        with pytest.warns(RuntimeWarning, match="unreadable run manifest"):
            man.mark_done("abc")
        assert json.loads(path.read_text())["tasks"].keys() == {"abc"}

    def test_resolve(self, tmp_path):
        man = RunManifest(tmp_path / "m.json")
        assert RunManifest.resolve(None) is None
        assert RunManifest.resolve(man) is man
        assert RunManifest.resolve(str(tmp_path / "m.json")).path == man.path

    def test_clear(self, tmp_path):
        man = RunManifest(tmp_path / "man.json")
        man.mark_done("a")
        man.mark_done("b")
        man.clear()
        assert len(man) == 0


class TestTaskFingerprint:
    def test_covers_the_full_recipe(self):
        base = task_fingerprint("tunnel", 0, {"n_frames": 300},
                                {"mode": "oracle"})
        assert base == task_fingerprint("tunnel", 0, {"n_frames": 300},
                                        {"mode": "oracle"})
        assert base != task_fingerprint("tunnel", 1, {"n_frames": 300},
                                        {"mode": "oracle"})
        assert base != task_fingerprint("highway", 0, {"n_frames": 300},
                                        {"mode": "oracle"})
        assert base != task_fingerprint("tunnel", 0, {"n_frames": 301},
                                        {"mode": "oracle"})
        assert base != task_fingerprint("tunnel", 0, {"n_frames": 300},
                                        {"mode": "vision"})

    def test_ingest_task_fingerprint_excludes_store(self):
        a = IngestTask("tunnel", 0, sim_kwargs=dict(SIM_KWARGS),
                       build_kwargs={"mode": "oracle"}, store_dir="/a")
        b = IngestTask("tunnel", 0, sim_kwargs=dict(SIM_KWARGS),
                       build_kwargs={"mode": "oracle"}, store_dir="/b")
        assert a.fingerprint() == b.fingerprint()


class TestKillAndResume:
    def test_completed_work_recorded_as_it_lands(self, tmp_path):
        man = RunManifest(tmp_path / "man.json")
        built = _sweep(tmp_path, (0, 1), manifest=man)
        assert set(built) == {0, 1}
        assert len(man) == 2
        for record in man.entries().values():
            assert record["scenario"] == "tunnel"
            assert record["seed"] in (0, 1)

    def test_resume_skips_completed_clips(self, tmp_path, monkeypatch):
        man = RunManifest(tmp_path / "man.json")
        # "First run": the sweep dies after completing only seed 0.
        first = _sweep(tmp_path, (0,), manifest=man)
        assert len(man) == 1

        # "Resume": seeds (0, 1).  Only seed 1 may reach the pool.
        submitted = []
        original = parallel.build_artifacts_parallel

        def spying(tasks, **kwargs):
            submitted.extend(tasks)
            return original(tasks, **kwargs)

        monkeypatch.setattr(parallel, "build_artifacts_parallel", spying)
        resumed = _sweep(tmp_path, (0, 1), manifest=man)
        assert [t.seed for t in submitted] == [1]
        assert len(man) == 2

        # Seed 0 was not re-ingested: every stage replayed from the
        # shared store; and its artifacts match the pre-kill build.
        assert sum(resumed[0].stage_runs.values()) == 0
        assert ([b.bag_id for b in resumed[0].dataset.bags]
                == [b.bag_id for b in first[0].dataset.bags])
        # Seed 1 genuinely ran.
        assert sum(resumed[1].stage_runs.values()) >= 1

    def test_resume_with_finished_manifest_runs_nothing(self, tmp_path,
                                                        monkeypatch):
        man = RunManifest(tmp_path / "man.json")
        _sweep(tmp_path, (0, 1), manifest=man)

        def forbidden(tasks, **kwargs):
            assert not list(tasks), "resume should submit no tasks"
            return []

        monkeypatch.setattr(parallel, "build_artifacts_parallel", forbidden)
        resumed = _sweep(tmp_path, (0, 1), manifest=man)
        assert set(resumed) == {0, 1}
        assert all(sum(a.stage_runs.values()) == 0
                   for a in resumed.values())

    def test_manifest_ignores_unrelated_recipes(self, tmp_path):
        man = RunManifest(tmp_path / "man.json")
        _sweep(tmp_path, (0,), manifest=man)
        # A different window size is a different computation: the
        # manifest entry must not satisfy it.
        other = IngestTask("tunnel", 0, sim_kwargs=dict(SIM_KWARGS),
                           build_kwargs={"mode": "oracle",
                                         "window_size": 5})
        assert not man.is_done(other.fingerprint())
