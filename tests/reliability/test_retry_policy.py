"""RetryPolicy: bounded attempts, deterministic backoff, retry filter."""

import pytest

from repro.errors import ConfigurationError, PipelineError, RetryableError
from repro.reliability import RetryPolicy


class TestValidation:
    def test_rejects_zero_attempts(self):
        with pytest.raises(ConfigurationError, match="max_attempts"):
            RetryPolicy(max_attempts=0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            RetryPolicy(base_delay=-1.0)

    def test_rejects_shrinking_backoff(self):
        with pytest.raises(ConfigurationError, match="backoff"):
            RetryPolicy(backoff=0.5)

    def test_rejects_negative_jitter(self):
        with pytest.raises(ConfigurationError, match="jitter"):
            RetryPolicy(jitter=-0.1)

    def test_attempt_is_one_based(self):
        with pytest.raises(ConfigurationError, match="1-based"):
            RetryPolicy().delay(0)


class TestSchedule:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(max_attempts=6, base_delay=0.1, backoff=2.0,
                             max_delay=0.5, jitter=0.0)
        delays = policy.delays(key="t")
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jitter_is_deterministic(self):
        a = RetryPolicy(max_attempts=4, jitter=0.5, seed=3)
        b = RetryPolicy(max_attempts=4, jitter=0.5, seed=3)
        assert a.delays(key="k") == b.delays(key="k")

    def test_jitter_varies_by_key_and_seed(self):
        policy = RetryPolicy(max_attempts=3, jitter=0.5, seed=0)
        assert policy.delays(key="a") != policy.delays(key="b")
        other_seed = RetryPolicy(max_attempts=3, jitter=0.5, seed=1)
        assert policy.delays(key="a") != other_seed.delays(key="a")

    def test_jitter_bounded_above_base(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.1, jitter=0.5,
                             max_delay=10.0)
        delay = policy.delay(1, key="x")
        assert 0.1 <= delay <= 0.1 * 1.5

    def test_retry_filter(self):
        policy = RetryPolicy()
        assert policy.is_retryable(RetryableError("transient"))
        assert policy.is_retryable(OSError("disk hiccup"))
        assert not policy.is_retryable(PipelineError("bad clip"))
        only_custom = RetryPolicy(retry_on=(RetryableError,))
        assert not only_custom.is_retryable(OSError("x"))


class TestRun:
    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}
        slept = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise RetryableError("not yet")
            return "ok"

        policy = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)
        assert policy.run(flaky, key="t", sleep=slept.append) == "ok"
        assert calls["n"] == 3
        assert slept == policy.delays(key="t")

    def test_exhausted_attempts_reraise(self):
        def always(): raise RetryableError("still down")

        policy = RetryPolicy(max_attempts=2, base_delay=0.0)
        with pytest.raises(RetryableError, match="still down"):
            policy.run(always, sleep=lambda _t: None)

    def test_deterministic_failure_not_retried(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise PipelineError("bad input")

        with pytest.raises(PipelineError):
            RetryPolicy(max_attempts=5).run(broken, sleep=lambda _t: None)
        assert calls["n"] == 1
