"""run_tasks: failure isolation, retries, timeouts, pool resurrection.

The worker functions live at module level so they pickle across the
process boundary; the ones that must change behaviour between attempts
coordinate through marker files under a tmp directory (worker processes
share no memory with the test).
"""

import os
import time

import pytest

from repro.errors import (
    ConfigurationError,
    PipelineError,
    RetryableError,
    TaskTimeoutError,
)
from repro.reliability import BatchResult, RetryPolicy, run_tasks

FAST = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.002,
                   jitter=0.0)


def _double(x):
    return 2 * x


def _fail_on_negative(x):
    if x < 0:
        raise PipelineError(f"unusable clip {x}")
    return 2 * x


def _flaky(spec):
    """Fails with RetryableError until its marker file has 2 lines."""
    directory, x = spec
    marker = os.path.join(directory, f"attempts-{x}")
    with open(marker, "a") as fh:
        fh.write("attempt\n")
    with open(marker) as fh:
        n_attempts = len(fh.readlines())
    if n_attempts < 2:
        raise RetryableError(f"transient failure {n_attempts} for {x}")
    return 2 * x


def _poison_once(spec):
    """Hard-kills its worker process on the first run (simulates OOM)."""
    directory, x = spec
    if x == "poison":
        marker = os.path.join(directory, "poisoned")
        if not os.path.exists(marker):
            with open(marker, "w") as fh:
                fh.write("died\n")
            os._exit(1)
    return spec[1]


def _sleep_for(seconds):
    time.sleep(seconds)
    return seconds


class TestValidation:
    def test_empty_batch(self):
        batch = run_tasks(_double, [])
        assert batch.ok and batch.results == []

    def test_rejects_bad_workers(self):
        with pytest.raises(ConfigurationError, match="max_workers"):
            run_tasks(_double, [1], max_workers=0)

    def test_rejects_bad_timeout(self):
        with pytest.raises(ConfigurationError, match="task_timeout"):
            run_tasks(_double, [1], task_timeout=0.0)


class TestIsolation:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_one_failure_leaves_others_intact(self, workers):
        batch = run_tasks(_fail_on_negative, [1, -5, 3, 4],
                          max_workers=workers, strict=False)
        assert isinstance(batch, BatchResult)
        assert not batch.ok
        assert batch.results == [2, None, 6, 8]
        assert batch.completed() == [2, 6, 8]
        [failure] = batch.failures
        assert failure.index == 1
        assert failure.task == -5
        assert failure.error_type == "PipelineError"
        assert "unusable clip" in failure.message
        assert "PipelineError" in failure.traceback
        assert failure.attempts == 1

    @pytest.mark.parametrize("workers", [1, 2])
    def test_strict_reraises_original_exception(self, workers):
        with pytest.raises(PipelineError, match="unusable clip"):
            run_tasks(_fail_on_negative, [1, -5, 3],
                      max_workers=workers)

    def test_results_keep_task_order(self):
        batch = run_tasks(_double, list(range(8)), max_workers=4)
        assert batch.results == [2 * x for x in range(8)]

    def test_on_result_sees_every_success(self):
        seen = []
        run_tasks(_double, [5, 6, 7], max_workers=2,
                  on_result=lambda i, v: seen.append((i, v)))
        assert sorted(seen) == [(0, 10), (1, 12), (2, 14)]


class TestRetry:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_transient_failures_retried_to_success(self, workers, tmp_path):
        tasks = [(str(tmp_path), x) for x in (1, 2, 3)]
        batch = run_tasks(_flaky, tasks, max_workers=workers, retry=FAST,
                          strict=False)
        assert batch.ok
        assert batch.results == [2, 4, 6]
        assert batch.attempts == [2, 2, 2]

    def test_no_policy_means_no_retries(self, tmp_path):
        tasks = [(str(tmp_path), 1)]
        batch = run_tasks(_flaky, tasks, max_workers=1, strict=False)
        assert not batch.ok
        assert batch.failures[0].error_type == "RetryableError"
        assert batch.attempts == [1]

    def test_attempts_are_bounded(self, tmp_path):
        # A task that always fails retryably burns exactly max_attempts.
        batch = run_tasks(_fail_on_negative, [-1], max_workers=1,
                          retry=RetryPolicy(max_attempts=4, base_delay=0.0,
                                            retry_on=(PipelineError,)),
                          strict=False)
        assert batch.attempts == [4]
        assert batch.failures[0].attempts == 4


class TestTimeout:
    def test_overdue_task_abandoned_others_survive(self):
        batch = run_tasks(_sleep_for, [0.01, 1.5, 0.01], max_workers=3,
                          task_timeout=0.3, strict=False)
        assert batch.results[0] == 0.01 and batch.results[2] == 0.01
        [failure] = batch.failures
        assert failure.index == 1
        assert isinstance(failure.error, TaskTimeoutError)

    def test_timeout_strict_raises(self):
        with pytest.raises(TaskTimeoutError):
            run_tasks(_sleep_for, [1.5, 0.01], max_workers=2,
                      task_timeout=0.2)


class TestBrokenPool:
    def test_pool_restart_preserves_completed_work(self, tmp_path):
        tasks = [(str(tmp_path), x)
                 for x in ("a", "poison", "b", "c", "d", "e")]
        batch = run_tasks(_poison_once, tasks, max_workers=2, strict=False)
        assert batch.pool_restarts >= 1
        assert batch.ok
        assert batch.results == ["a", "poison", "b", "c", "d", "e"]

    def test_unrecoverable_pool_reports_failures(self):
        # Every attempt re-kills the pool: after max_pool_restarts the
        # incomplete tasks surface as structured failures, not a hang.
        # Two tasks keep the pool path engaged (one task would fall back
        # to the serial path, where _always_poison must never run).
        batch = run_tasks(_always_poison, ["x", "y"], max_workers=2,
                          strict=False, max_pool_restarts=1)
        assert not batch.ok
        assert batch.pool_restarts == 2
        assert len(batch.failures) == 2
        assert batch.failures[0].error_type.startswith("Broken")


def _always_poison(_spec):  # pragma: no cover - runs in worker processes
    os._exit(1)
