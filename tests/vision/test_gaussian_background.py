"""Tests for the per-pixel Gaussian background model."""

import numpy as np
import pytest

from repro.errors import NotFittedError, PipelineError
from repro.vision import GaussianBackgroundModel, SegmentationPipeline


def _scene(n=30, h=20, w=30, noise_map=None, object_frames=(), seed=0):
    """Scene with per-region noise levels and optional bright object."""
    rng = np.random.default_rng(seed)
    frames = np.full((n, h, w), 100.0)
    sigma = np.full((h, w), 1.5) if noise_map is None else noise_map
    frames += rng.normal(0, 1.0, (n, h, w)) * sigma
    for i in object_frames:
        frames[i, 5:12, 10:18] = 220.0
    return np.clip(frames, 0, 255).astype(np.uint8)


class TestLearn:
    def test_mean_matches_scene(self):
        model = GaussianBackgroundModel().learn(_scene())
        assert model.is_fitted
        assert np.abs(model.mean - 100.0).max() < 6.0

    def test_variance_reflects_local_noise(self):
        noise_map = np.full((20, 30), 1.0)
        noise_map[:, 15:] = 6.0  # right half is noisy
        frames = _scene(noise_map=noise_map)
        model = GaussianBackgroundModel().learn(frames)
        assert model.var[:, 20:].mean() > model.var[:, :10].mean() * 2

    def test_learn_empty_rejected(self):
        with pytest.raises(PipelineError):
            GaussianBackgroundModel().learn(np.zeros((0, 4, 4)))


class TestSubtract:
    def test_object_detected(self):
        frames = _scene(object_frames=[29])
        model = GaussianBackgroundModel().learn(frames[:25])
        mask = model.subtract(frames[29])
        assert mask[8, 14]
        assert not mask[1, 1]

    def test_adaptive_threshold_suppresses_noisy_region(self):
        """Noise spikes in a noisy region must not fire; the same
        amplitude in a quiet region must."""
        noise_map = np.full((20, 30), 1.0)
        noise_map[:, 15:] = 6.0
        frames = _scene(noise_map=noise_map)
        model = GaussianBackgroundModel(k_sigma=3.5).learn(frames)
        probe = np.full((20, 30), 100.0)
        probe += 14.0  # moderate deviation everywhere
        mask = model.subtract(probe)
        quiet_rate = mask[:, :10].mean()
        noisy_rate = mask[:, 20:].mean()
        assert quiet_rate > 0.9   # 14 gray >> 3.5 sigma in quiet half
        # Mostly within tolerance in the noisy half (per-pixel sigma is
        # itself estimated from a small sample, so allow some leakage).
        assert noisy_rate < 0.25
        assert quiet_rate > noisy_rate * 3

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            GaussianBackgroundModel().subtract(np.zeros((4, 4)))

    def test_shape_mismatch(self):
        model = GaussianBackgroundModel().learn(_scene())
        with pytest.raises(PipelineError):
            model.subtract(np.zeros((4, 4)))


class TestUpdate:
    def test_mean_tracks_slow_drift(self):
        frames = _scene()
        model = GaussianBackgroundModel(learning_rate=0.05).learn(frames)
        drifted = np.full((20, 30), 115.0)
        for _ in range(200):
            model.update(drifted, np.zeros((20, 30), dtype=bool))
        assert np.abs(model.mean - 115.0).max() < 2.0

    def test_foreground_pixels_frozen(self):
        frames = _scene()
        model = GaussianBackgroundModel(learning_rate=0.5).learn(frames)
        before = model.mean.copy()
        bright = np.full((20, 30), 250.0)
        model.update(bright, np.ones((20, 30), dtype=bool))
        assert np.array_equal(model.mean, before)

    def test_variance_floor_respected(self):
        frames = _scene()
        model = GaussianBackgroundModel(learning_rate=0.2).learn(frames)
        flat = np.full((20, 30), 100.0)
        for _ in range(100):
            model.update(flat, np.zeros((20, 30), dtype=bool))
        assert model.var.min() >= GaussianBackgroundModel.MIN_STD ** 2 - 1e-6


class TestPipelineIntegration:
    def test_pipeline_accepts_gaussian_model(self, small_tunnel):
        from repro.vision import VideoClip

        clip = VideoClip.from_simulation(small_tunnel, render_seed=4)
        pipeline = SegmentationPipeline(
            background=GaussianBackgroundModel(), use_spcpe=False)
        detections = pipeline.process(clip)
        assert len(detections) == small_tunnel.n_frames
        assert any(len(d) > 0 for d in detections)

    @pytest.mark.parametrize("kwargs", [
        {"k_sigma": 0.0},
        {"learning_rate": 2.0},
        {"bootstrap_frames": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(Exception):
            GaussianBackgroundModel(**kwargs)
