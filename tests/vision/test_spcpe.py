"""Tests for the simplified SPCPE segmentation."""

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.vision import SPCPE


def _patch_with_object(h=24, w=30, obj_val=210.0, bg_base=100.0,
                       gradient=0.0, noise=1.0, seed=0):
    """Background (optionally with a gradient) plus a bright rectangle."""
    rng = np.random.default_rng(seed)
    ys, xs = np.mgrid[0:h, 0:w]
    patch = bg_base + gradient * xs / w + rng.normal(0, noise, (h, w))
    obj = np.zeros((h, w), dtype=bool)
    obj[8:16, 10:22] = True
    patch[obj] = obj_val + rng.normal(0, noise, obj.sum())
    return patch, obj


class TestPartition:
    def test_recovers_bright_object(self):
        patch, truth = _patch_with_object()
        seg = SPCPE().partition(patch)
        iou = (seg & truth).sum() / (seg | truth).sum()
        assert iou > 0.85

    def test_recovers_dark_object(self):
        patch, truth = _patch_with_object(obj_val=30.0)
        seg = SPCPE().partition(patch)
        iou = (seg & truth).sum() / (seg | truth).sum()
        assert iou > 0.85

    def test_handles_illumination_gradient(self):
        # A strong linear gradient would break plain thresholding; the
        # bilinear class model must absorb it.
        patch, truth = _patch_with_object(gradient=60.0)
        seg = SPCPE().partition(patch)
        iou = (seg & truth).sum() / (seg | truth).sum()
        assert iou > 0.7

    def test_flat_patch_degenerates_to_empty(self):
        rng = np.random.default_rng(1)
        patch = 100.0 + rng.normal(0, 1.0, (20, 20))
        seg = SPCPE().partition(patch)
        # No object class should survive on a featureless patch.
        assert seg.sum() < 0.5 * patch.size

    def test_object_is_minority_class(self):
        patch, _ = _patch_with_object()
        seg = SPCPE().partition(patch)
        assert seg.sum() <= patch.size / 2

    def test_rejects_tiny_input(self):
        with pytest.raises(PipelineError):
            SPCPE().partition(np.zeros((1, 2)))

    def test_rejects_1d_input(self):
        with pytest.raises(PipelineError):
            SPCPE().partition(np.zeros(30))


class TestRefineMask:
    def test_refine_tightens_coarse_mask(self):
        patch, truth = _patch_with_object()
        coarse = np.zeros_like(truth)
        coarse[6:18, 8:24] = True  # loose box around the object
        refined = SPCPE().refine_mask(patch, coarse)
        assert (refined & truth).sum() / truth.sum() > 0.9

    def test_falls_back_when_spcpe_degenerates(self):
        rng = np.random.default_rng(2)
        patch = 100.0 + rng.normal(0, 1.0, (20, 20))
        coarse = np.zeros((20, 20), dtype=bool)
        coarse[5:10, 5:10] = True
        refined = SPCPE().refine_mask(patch, coarse)
        # Degenerate partition: we keep the coarse detection.
        assert (refined & coarse).sum() >= coarse.sum() * 0.99

    def test_shape_mismatch_rejected(self):
        with pytest.raises(PipelineError):
            SPCPE().refine_mask(np.zeros((10, 10)),
                                np.zeros((5, 5), dtype=bool))
