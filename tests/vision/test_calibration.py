"""Tests for homography estimation and trajectory normalization."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.camera import CameraModel
from repro.vision.calibration import (
    PlaneNormalizedTrack,
    estimate_homography,
    normalize_tracks,
)
from tests.events.test_features import _track


def _correspondences(cam, n=8, seed=0):
    rng = np.random.default_rng(seed)
    world = rng.uniform([20, 20], [300, 220], size=(n, 2))
    return world, cam.project(world)


class TestEstimateHomography:
    def test_recovers_known_camera(self):
        cam = CameraModel.tilted()
        world, image = _correspondences(cam)
        estimated = estimate_homography(world, image)
        probe = np.array([[50.0, 60.0], [250.0, 180.0], [160.0, 120.0]])
        assert np.allclose(estimated.project(probe), cam.project(probe),
                           atol=1e-6)

    def test_four_points_exact(self):
        cam = CameraModel.overhead(scale=1.5, offset=(3, 4))
        world = np.array([[0.0, 0], [100, 0], [100, 100], [0, 100]])
        estimated = estimate_homography(world, cam.project(world))
        assert np.allclose(estimated.project([[50.0, 50.0]]),
                           cam.project([[50.0, 50.0]]), atol=1e-8)

    def test_noisy_correspondences_still_close(self):
        cam = CameraModel.tilted()
        world, image = _correspondences(cam, n=20, seed=1)
        noisy = image + np.random.default_rng(2).normal(0, 0.3, image.shape)
        estimated = estimate_homography(world, noisy)
        probe = np.array([[160.0, 120.0]])
        err = np.linalg.norm(estimated.project(probe) - cam.project(probe))
        assert err < 2.0

    def test_too_few_points_rejected(self):
        with pytest.raises(ConfigurationError, match=">= 4"):
            estimate_homography(np.zeros((3, 2)), np.zeros((3, 2)))

    def test_collinear_points_rejected(self):
        world = np.column_stack([np.arange(6.0), np.arange(6.0)])
        with pytest.raises(ConfigurationError, match="degenerate"):
            estimate_homography(world, world * 2.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_homography(np.zeros((5, 2)), np.zeros((4, 2)))


class TestPlaneNormalizedTrack:
    def test_positions_back_projected(self):
        cam = CameraModel.tilted()
        world_positions = [(40.0 + 3 * i, 120.0) for i in range(30)]
        image_positions = cam.project(world_positions)
        track = _track(7, [tuple(p) for p in image_positions])
        normalized = PlaneNormalizedTrack(track, cam)
        assert normalized.track_id == 7
        assert normalized.first_frame == track.first_frame
        assert np.allclose(normalized.position_at(10), world_positions[10],
                           atol=1e-6)
        assert np.allclose(normalized.point_array(), world_positions,
                           atol=1e-6)

    def test_normalization_restores_constant_speed(self):
        """A vehicle at constant world speed has varying image speed
        through a tilted camera; normalization makes it constant again."""
        from repro.events import SamplingConfig, extract_series

        # Drive along the camera's depth axis so foreshortening varies.
        cam = CameraModel.tilted()
        world_positions = [(160.0, 20.0 + 3 * i) for i in range(60)]
        image_track = _track(0, [tuple(p) for p in
                                 cam.project(world_positions)])
        cfg = SamplingConfig(smooth_window=1)
        image_series = extract_series([image_track], cfg)[0]
        norm_series = extract_series(
            [PlaneNormalizedTrack(image_track, cam)], cfg)[0]
        assert np.std(norm_series.channels["velocity"]) \
            < np.std(image_series.channels["velocity"])
        assert np.allclose(norm_series.channels["velocity"], 3.0, atol=0.05)

    def test_normalize_tracks_batch(self):
        cam = CameraModel.overhead(scale=2.0)
        tracks = [_track(i, [(10.0 * j, 5.0) for j in range(10)])
                  for i in range(3)]
        normalized = normalize_tracks(tracks, cam)
        assert [t.track_id for t in normalized] == [0, 1, 2]
        assert np.allclose(normalized[0].position_at(2), [10.0, 2.5])
