"""Tests for detection/tracking quality metrics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim import Route, TrafficWorld, Vehicle, VehicleSpec
from repro.tracking import CentroidTracker, Track
from repro.tracking.oracle import tracks_from_simulation
from repro.vision.blobs import Blob
from repro.vision.metrics import evaluate_detections, evaluate_tracking
from repro.vision.pipeline import Detection


def _sim(n_frames=120, lanes=((0.0, 60.0), (0.0, 120.0))):
    world = TrafficWorld(320, 240, seed=0, speed_jitter=0.0)
    for vid, (x0, y) in enumerate(lanes):
        route = Route.straight((x0, y), (350.0, y), speed=2.5)
        world.add_vehicle(Vehicle(VehicleSpec(vid), route))
    return world.run(n_frames)


def _perfect_detections(result, jitter=0.0, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for frame, states in enumerate(result.states):
        dets = []
        for s in states:
            x = s.x + (rng.normal(0, jitter) if jitter else 0.0)
            y = s.y + (rng.normal(0, jitter) if jitter else 0.0)
            blob = Blob(cx=x, cy=y, x0=int(x) - 7, y0=int(y) - 4,
                        x1=int(x) + 7, y1=int(y) + 4, area=98,
                        mean_intensity=200.0)
            dets.append(Detection(frame=frame, blob=blob))
        out.append(dets)
    return out


class TestEvaluateDetections:
    def test_perfect_detections_score_perfectly(self):
        result = _sim()
        quality = evaluate_detections(result, _perfect_detections(result),
                                      start_frame=10)
        assert quality.recall == pytest.approx(1.0)
        assert quality.precision == pytest.approx(1.0)
        assert quality.false_positives_per_frame == 0.0
        assert quality.mean_position_error < 0.5

    def test_missing_detections_reduce_recall(self):
        result = _sim()
        dets = _perfect_detections(result)
        for frame in range(20, 60):
            dets[frame] = []
        quality = evaluate_detections(result, dets, start_frame=10)
        assert quality.recall < 0.8

    def test_spurious_detections_reduce_precision(self):
        result = _sim()
        dets = _perfect_detections(result)
        for frame in range(10, len(dets)):
            blob = Blob(cx=300.0, cy=200.0, x0=295, y0=195, x1=305,
                        y1=205, area=100, mean_intensity=50.0)
            dets[frame].append(Detection(frame=frame, blob=blob))
        quality = evaluate_detections(result, dets, start_frame=10)
        assert quality.precision < 0.8
        assert quality.false_positives_per_frame == pytest.approx(1.0)

    def test_jitter_raises_position_error(self):
        result = _sim()
        clean = evaluate_detections(result, _perfect_detections(result),
                                    start_frame=10)
        noisy = evaluate_detections(
            result, _perfect_detections(result, jitter=2.0),
            start_frame=10)
        assert noisy.mean_position_error > clean.mean_position_error

    def test_frame_count_mismatch_rejected(self):
        result = _sim()
        with pytest.raises(ConfigurationError):
            evaluate_detections(result, [[]])


class TestEvaluateTracking:
    def test_oracle_tracks_score_perfectly(self):
        result = _sim()
        tracks = tracks_from_simulation(result)
        quality = evaluate_tracking(result, tracks, start_frame=10)
        assert quality.coverage == pytest.approx(1.0)
        assert quality.fragments_per_vehicle == pytest.approx(1.0)
        assert quality.purity == pytest.approx(1.0)

    def test_fragmented_track_detected(self):
        result = _sim()
        dets = _perfect_detections(result)
        for frame in range(50, 62):
            dets[frame] = []  # long dropout splits the tracks
        tracks = CentroidTracker(max_misses=3,
                                 min_track_length=4).track(dets)
        quality = evaluate_tracking(result, tracks, start_frame=10)
        assert quality.fragments_per_vehicle > 1.5

    def test_identity_swap_reduces_purity(self):
        result = _sim(lanes=((0.0, 60.0), (0.0, 70.0)))
        # One deliberately swapped track: first half vehicle 0, second
        # half vehicle 1.
        swapped = Track(0)
        other = Track(1)
        for frame, states in enumerate(result.states):
            if len(states) < 2:
                continue
            a, b = states[0], states[1]
            first, second = (a, b) if frame < 60 else (b, a)
            swapped.add(frame, Blob(cx=first.x, cy=first.y, x0=0, y0=0,
                                    x1=4, y1=4, area=16,
                                    mean_intensity=0.0))
            other.add(frame, Blob(cx=second.x, cy=second.y, x0=0, y0=0,
                                  x1=4, y1=4, area=16,
                                  mean_intensity=0.0))
        quality = evaluate_tracking(result, [swapped, other],
                                    start_frame=10)
        assert quality.purity < 1.0

    def test_empty_tracks(self):
        result = _sim()
        quality = evaluate_tracking(result, [], start_frame=10)
        assert quality.coverage == 0.0
        assert quality.n_tracks == 0


class TestEndToEndQuality:
    def test_vision_pipeline_meets_quality_bar(self, small_tunnel):
        from repro.vision import SegmentationPipeline, VideoClip

        clip = VideoClip.from_simulation(small_tunnel, render_seed=2)
        detections = SegmentationPipeline(use_spcpe=False).process(clip)
        det_quality = evaluate_detections(small_tunnel, detections)
        assert det_quality.recall > 0.9
        assert det_quality.false_positives_per_frame < 0.2

        tracks = CentroidTracker().track(detections)
        track_quality = evaluate_tracking(small_tunnel, tracks)
        assert track_quality.coverage > 0.85
        assert track_quality.purity > 0.8
