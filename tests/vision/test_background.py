"""Tests for background learning and subtraction."""

import numpy as np
import pytest

from repro.errors import NotFittedError, PipelineError
from repro.vision import BackgroundModel


def _scene(n=30, h=20, w=30, object_frames=(), seed=0):
    """Static gray scene with an optional bright square in some frames."""
    rng = np.random.default_rng(seed)
    frames = np.full((n, h, w), 100.0) + rng.normal(0, 1.5, (n, h, w))
    for i in object_frames:
        frames[i, 5:12, 10:18] = 220.0
    return np.clip(frames, 0, 255).astype(np.uint8)


class TestLearn:
    def test_median_bootstrap_recovers_static_scene(self):
        frames = _scene()
        model = BackgroundModel().learn(frames)
        assert model.is_fitted
        assert np.abs(model.background - 100.0).max() < 6.0

    def test_bootstrap_robust_to_transient_objects(self):
        # Object present in under half of the sampled frames.
        frames = _scene(n=30, object_frames=range(0, 10))
        model = BackgroundModel(bootstrap_frames=30).learn(frames)
        assert abs(model.background[8, 14] - 100.0) < 10.0

    def test_learn_empty_rejected(self):
        with pytest.raises(PipelineError):
            BackgroundModel().learn(np.zeros((0, 4, 4)))


class TestSubtract:
    def test_object_pixels_flagged(self):
        frames = _scene(object_frames=[29])
        model = BackgroundModel().learn(frames[:25])
        mask = model.subtract(frames[29])
        assert mask[8, 14]
        assert not mask[1, 1]

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            BackgroundModel().subtract(np.zeros((4, 4)))

    def test_shape_mismatch_raises(self):
        model = BackgroundModel().learn(_scene())
        with pytest.raises(PipelineError):
            model.subtract(np.zeros((4, 4)))

    def test_threshold_controls_sensitivity(self):
        frames = _scene()
        strict = BackgroundModel(threshold=60.0).learn(frames)
        loose = BackgroundModel(threshold=3.0).learn(frames)
        noisy = frames[0].astype(float) + 10.0
        assert not strict.subtract(noisy).any()
        assert loose.subtract(noisy).mean() > 0.95


class TestUpdate:
    def test_stationary_object_absorbed_slowly(self):
        frames = _scene()
        model = BackgroundModel(learning_rate=0.1).learn(frames)
        still = frames[0].copy()
        still[5:12, 10:18] = 220
        # Feed the same parked object many times, updating everywhere
        # (simulate it being missed by the detector).
        for _ in range(200):
            model.update(still, np.zeros_like(still, dtype=bool))
        assert abs(model.background[8, 14] - 220.0) < 2.0

    def test_foreground_pixels_protected(self):
        frames = _scene()
        model = BackgroundModel(learning_rate=0.5).learn(frames)
        before = model.background.copy()
        moving = frames[0].copy()
        moving[5:12, 10:18] = 220
        mask = model.subtract(moving)
        model.update(moving, mask)
        assert abs(model.background[8, 14] - before[8, 14]) < 1e-6

    def test_zero_learning_rate_freezes(self):
        frames = _scene()
        model = BackgroundModel(learning_rate=0.0).learn(frames)
        before = model.background.copy()
        model.update(np.full_like(before, 250.0),
                     np.zeros_like(before, dtype=bool))
        assert np.array_equal(model.background, before)

    def test_apply_combines_subtract_and_update(self):
        frames = _scene(object_frames=[29])
        model = BackgroundModel().learn(frames[:25])
        mask = model.apply(frames[29])
        assert mask[8, 14]


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"threshold": 0.0},
        {"learning_rate": -0.1},
        {"learning_rate": 1.5},
        {"bootstrap_frames": 0},
    ])
    def test_bad_params_rejected(self, kwargs):
        with pytest.raises(Exception):
            BackgroundModel(**kwargs)
