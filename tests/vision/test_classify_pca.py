"""Tests for the PCA-based vehicle classifier."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotFittedError
from repro.vision import PCAVehicleClassifier, resize_patch
from repro.vision.classify_pca import training_set_from_sim


class TestResizePatch:
    def test_identity_resize(self):
        patch = np.arange(16.0).reshape(4, 4)
        assert np.array_equal(resize_patch(patch, (4, 4)), patch)

    def test_upscale_shape(self):
        patch = np.arange(4.0).reshape(2, 2)
        out = resize_patch(patch, (8, 8))
        assert out.shape == (8, 8)
        assert out[0, 0] == patch[0, 0]
        assert out[-1, -1] == patch[-1, -1]

    def test_downscale_shape(self):
        patch = np.arange(400.0).reshape(20, 20)
        assert resize_patch(patch, (5, 7)).shape == (5, 7)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            resize_patch(np.zeros((0, 4)))


class TestPCAVehicleClassifier:
    @pytest.fixture(scope="class")
    def dataset(self):
        return training_set_from_sim(per_class=30, seed=0)

    @pytest.fixture(scope="class")
    def fitted(self, dataset):
        patches, labels = dataset
        return PCAVehicleClassifier(n_components=10).fit(patches, labels)

    def test_training_set_balanced(self, dataset):
        _, labels = dataset
        counts = {k: labels.count(k) for k in set(labels)}
        assert set(counts) == {"car", "suv", "truck"}
        assert all(v == 30 for v in counts.values())

    def test_high_training_accuracy(self, dataset, fitted):
        patches, labels = dataset
        predictions = fitted.predict(patches)
        accuracy = np.mean([p == t for p, t in zip(predictions, labels)])
        assert accuracy > 0.9

    def test_generalizes_to_fresh_renders(self, fitted):
        patches, labels = training_set_from_sim(per_class=20, seed=99)
        predictions = fitted.predict(patches)
        accuracy = np.mean([p == t for p, t in zip(predictions, labels)])
        assert accuracy > 0.8

    def test_transform_dimension(self, dataset, fitted):
        patches, _ = dataset
        projected = fitted.transform(patches[:5])
        assert projected.shape == (5, 10)

    def test_robust_to_brightness_shift(self, dataset, fitted):
        patches, labels = dataset
        shifted = [p + 30.0 for p in patches[:20]]
        predictions = fitted.predict(shifted)
        accuracy = np.mean([p == t for p, t in zip(predictions, labels[:20])])
        assert accuracy > 0.8

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            PCAVehicleClassifier().predict([np.zeros((8, 8))])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            PCAVehicleClassifier().fit([np.zeros((8, 8))], ["car", "suv"])

    def test_single_class_rejected(self):
        patches = [np.zeros((8, 8))] * 4
        with pytest.raises(ConfigurationError):
            PCAVehicleClassifier().fit(patches, ["car"] * 4)

    def test_classes_sorted(self, fitted):
        assert fitted.classes == ["car", "suv", "truck"]
