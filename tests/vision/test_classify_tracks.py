"""Tests for track-level vehicle classification (Section 3.1, last phase)."""

import numpy as np
import pytest

from repro.sim.ground_truth import TrackMatcher
from repro.tracking import CentroidTracker
from repro.vision import (
    SegmentationPipeline,
    VideoClip,
    classify_tracks,
    default_classifier,
)


@pytest.fixture(scope="module")
def pipeline_run(small_tunnel):
    clip = VideoClip.from_simulation(small_tunnel, render_seed=2)
    detections = SegmentationPipeline(use_spcpe=False).process(clip)
    tracks = CentroidTracker().track(detections)
    return clip, tracks


@pytest.fixture(scope="module")
def classifier():
    return default_classifier(per_class=30, seed=1)


class TestClassifyTracks:
    def test_every_track_gets_a_class(self, pipeline_run, classifier):
        clip, tracks = pipeline_run
        classes = classify_tracks(clip, tracks, classifier)
        assert set(classes) == {t.track_id for t in tracks}
        valid = {"car", "suv", "truck", "unknown"}
        assert set(classes.values()) <= valid

    def test_majority_classes_match_simulation(self, pipeline_run,
                                               classifier, small_tunnel):
        clip, tracks = pipeline_run
        classes = classify_tracks(clip, tracks, classifier)
        matcher = TrackMatcher(small_tunnel)
        kind_by_vid = {}
        for frame_states in small_tunnel.states:
            for s in frame_states:
                kind_by_vid[s.vid] = s.kind
        hits = total = 0
        for track in tracks:
            vid = matcher.match(track.frame_array(), track.point_array())
            label = classes[track.track_id]
            if vid is None or label == "unknown":
                continue
            total += 1
            hits += label == kind_by_vid[vid]
        assert total >= 3
        assert hits / total >= 0.7

    def test_default_classifier_built_on_demand(self, pipeline_run):
        clip, tracks = pipeline_run
        classes = classify_tracks(clip, tracks[:2])
        assert len(classes) == 2

    def test_track_at_frame_edge_is_unknown(self, classifier):
        from repro.tracking import Track
        from repro.vision.blobs import Blob

        frames = np.zeros((30, 40, 60), dtype=np.uint8)
        clip = VideoClip.from_array("edge", frames)
        track = Track(0)
        for f in range(10):
            blob = Blob(cx=2.0, cy=2.0, x0=0, y0=0, x1=4, y1=4,
                        area=16, mean_intensity=100.0)
            track.add(f, blob)
        classes = classify_tracks(clip, [track], classifier)
        assert classes[0] == "unknown"


class TestClassFilteredQuery:
    def test_results_filter_by_vehicle_class(self, small_tunnel):
        from repro.db import SemanticQuerySession, VideoDatabase
        from repro.eval import build_artifacts

        artifacts = build_artifacts(small_tunnel, mode="oracle")
        kinds = {}
        for frame_states in small_tunnel.states:
            for s in frame_states:
                kinds[s.vid] = s.kind
        db = VideoDatabase()
        db.ingest_simulation(small_tunnel, artifacts.tracks,
                             artifacts.dataset, vehicle_classes=kinds)
        session = SemanticQuerySession(db, small_tunnel.name, "accident",
                                       top_k=10)
        trucks_only = session.results(vehicle_class="truck")
        classes = db.vehicle_classes(small_tunnel.name)
        for bag_id in trucks_only:
            bag = session.dataset.bag_by_id(bag_id)
            assert any(classes.get(i.track_id) == "truck"
                       for i in bag.instances)

    def test_unknown_class_returns_empty(self, small_tunnel):
        from repro.db import SemanticQuerySession, VideoDatabase
        from repro.eval import build_artifacts

        artifacts = build_artifacts(small_tunnel, mode="oracle")
        db = VideoDatabase()
        db.ingest_simulation(small_tunnel, artifacts.tracks,
                             artifacts.dataset)
        session = SemanticQuerySession(db, small_tunnel.name, "accident")
        assert session.results(vehicle_class="zeppelin") == []
