"""Tests for the VideoClip abstraction."""

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.vision import VideoClip


def _toy_frames(n=5, h=8, w=10):
    rng = np.random.default_rng(0)
    return rng.integers(0, 255, size=(n, h, w), dtype=np.uint8)


class TestFromArray:
    def test_basic_access(self):
        frames = _toy_frames()
        clip = VideoClip.from_array("c1", frames)
        assert len(clip) == 5
        assert clip.shape == (8, 10)
        assert np.array_equal(clip.get(2), frames[2])

    def test_iteration_order(self):
        frames = _toy_frames()
        clip = VideoClip.from_array("c1", frames)
        for i, frame in enumerate(clip):
            assert np.array_equal(frame, frames[i])

    def test_out_of_range_raises(self):
        clip = VideoClip.from_array("c1", _toy_frames())
        with pytest.raises(IndexError):
            clip.get(5)
        with pytest.raises(IndexError):
            clip.get(-1)

    def test_rejects_non_3d(self):
        with pytest.raises(PipelineError):
            VideoClip.from_array("c1", np.zeros((5, 5)))

    def test_rejects_zero_frames(self):
        with pytest.raises(PipelineError):
            VideoClip("c1", 0, lambda i: np.zeros((2, 2)))

    def test_rejects_bad_fps(self):
        with pytest.raises(PipelineError):
            VideoClip.from_array("c1", _toy_frames(), fps=0.0)

    def test_inconsistent_frame_shapes_detected(self):
        shapes = {0: np.zeros((4, 4), dtype=np.uint8),
                  1: np.zeros((5, 5), dtype=np.uint8)}
        clip = VideoClip("c1", 2, lambda i: shapes[i])
        clip.get(0)
        with pytest.raises(PipelineError, match="differs"):
            clip.get(1)


class TestFromSimulation:
    def test_lazy_render_matches_scale(self, small_tunnel):
        clip = VideoClip.from_simulation(small_tunnel)
        assert len(clip) == small_tunnel.n_frames
        assert clip.shape == (small_tunnel.height, small_tunnel.width)
        assert clip.get(0).dtype == np.uint8

    def test_random_access_is_deterministic(self, small_tunnel):
        clip = VideoClip.from_simulation(small_tunnel, render_seed=9)
        a = clip.get(40)
        b = clip.get(40)
        assert np.array_equal(a, b)

    def test_metadata_carries_scenario(self, small_tunnel):
        clip = VideoClip.from_simulation(small_tunnel)
        assert clip.metadata["scenario"] == "tunnel"
        assert clip.metadata["width"] == small_tunnel.width
