"""Tests for blob extraction (connected components, MBR, centroid)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PipelineError
from repro.vision import Blob, clean_mask, extract_blobs


def _mask_with_rects(rects, h=40, w=60):
    mask = np.zeros((h, w), dtype=bool)
    for y0, y1, x0, x1 in rects:
        mask[y0:y1, x0:x1] = True
    return mask


class TestExtractBlobs:
    def test_single_rect(self):
        mask = _mask_with_rects([(10, 20, 5, 25)])
        blobs = extract_blobs(mask, min_area=10)
        assert len(blobs) == 1
        blob = blobs[0]
        assert blob.bbox == (5, 10, 25, 20)
        assert blob.area == 10 * 20
        assert blob.cx == pytest.approx((5 + 24) / 2)
        assert blob.cy == pytest.approx((10 + 19) / 2)
        assert (blob.width, blob.height) == (20, 10)

    def test_two_separate_rects(self):
        mask = _mask_with_rects([(5, 10, 5, 10), (25, 35, 30, 50)])
        blobs = extract_blobs(mask, min_area=5)
        assert len(blobs) == 2

    def test_min_area_filters_speckle(self):
        mask = _mask_with_rects([(5, 6, 5, 6), (20, 30, 20, 40)])
        blobs = extract_blobs(mask, min_area=10)
        assert len(blobs) == 1
        assert blobs[0].area == 200

    def test_max_area_filters_floods(self):
        mask = _mask_with_rects([(0, 40, 0, 60), ])
        assert extract_blobs(mask, min_area=5, max_area=100) == []

    def test_mean_intensity_from_frame(self):
        mask = _mask_with_rects([(5, 10, 5, 10)])
        frame = np.zeros((40, 60))
        frame[5:10, 5:10] = 200.0
        blobs = extract_blobs(mask, frame, min_area=5)
        assert blobs[0].mean_intensity == pytest.approx(200.0)

    def test_intensity_nan_without_frame(self):
        mask = _mask_with_rects([(5, 10, 5, 10)])
        blobs = extract_blobs(mask, min_area=5)
        assert np.isnan(blobs[0].mean_intensity)

    def test_empty_mask(self):
        assert extract_blobs(np.zeros((10, 10), dtype=bool)) == []

    def test_rejects_non_2d(self):
        with pytest.raises(PipelineError):
            extract_blobs(np.zeros((2, 3, 4), dtype=bool))

    def test_mask_slice_cuts_the_component(self):
        mask = _mask_with_rects([(10, 20, 5, 25)])
        blob = extract_blobs(mask, min_area=5)[0]
        rows, cols = blob.mask_slice()
        assert mask[rows, cols].all()

    @given(
        y0=st.integers(0, 20), x0=st.integers(0, 30),
        dh=st.integers(3, 15), dw=st.integers(3, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_centroid_always_inside_bbox(self, y0, x0, dh, dw):
        mask = _mask_with_rects([(y0, y0 + dh, x0, x0 + dw)])
        blobs = extract_blobs(mask, min_area=1)
        assert len(blobs) == 1
        b = blobs[0]
        assert b.x0 <= b.cx <= b.x1
        assert b.y0 <= b.cy <= b.y1
        assert b.area == dh * dw


class TestCleanMask:
    def test_opening_removes_speckle(self):
        mask = _mask_with_rects([(20, 30, 20, 40)])
        mask[2, 2] = True  # single-pixel noise
        cleaned = clean_mask(mask)
        assert not cleaned[2, 2]
        assert cleaned[25, 30]

    def test_closing_fills_holes(self):
        mask = _mask_with_rects([(20, 30, 20, 40)])
        mask[25, 30] = False  # one-pixel hole
        cleaned = clean_mask(mask)
        assert cleaned[25, 30]

    def test_no_ops_when_disabled(self):
        mask = _mask_with_rects([(20, 30, 20, 40)])
        mask[2, 2] = True
        out = clean_mask(mask, open_iterations=0, close_iterations=0)
        assert np.array_equal(out, mask)

    def test_rejects_non_2d(self):
        with pytest.raises(PipelineError):
            clean_mask(np.zeros(5, dtype=bool))
