"""Integration tests: segmentation pipeline on rendered simulator frames."""

import numpy as np
import pytest

from repro.sim import Renderer
from repro.vision import SegmentationPipeline, VideoClip


@pytest.fixture(scope="module")
def tunnel_clip(small_tunnel):
    return VideoClip.from_simulation(small_tunnel, render_seed=3)


@pytest.fixture(scope="module")
def detections(small_tunnel, tunnel_clip):
    pipeline = SegmentationPipeline()
    return pipeline.process(tunnel_clip)


class TestSegmentationPipeline:
    def test_one_detection_list_per_frame(self, small_tunnel, detections):
        assert len(detections) == small_tunnel.n_frames

    def test_detects_most_visible_vehicles(self, small_tunnel, detections):
        """Recall of true in-frame vehicles, frame by frame."""
        hits = total = 0
        margin = 8
        for frame_idx in range(40, small_tunnel.n_frames):
            truths = [
                s for s in small_tunnel.states[frame_idx]
                if margin < s.x < small_tunnel.width - margin
                and margin < s.y < small_tunnel.height - margin
            ]
            dets = detections[frame_idx]
            for s in truths:
                total += 1
                if any(
                    np.hypot(d.blob.cx - s.x, d.blob.cy - s.y) < 10.0
                    for d in dets
                ):
                    hits += 1
        assert total > 0
        assert hits / total > 0.9

    def test_few_false_positives(self, small_tunnel, detections):
        false_pos = 0
        n_frames = 0
        for frame_idx in range(40, small_tunnel.n_frames):
            truths = small_tunnel.states[frame_idx]
            n_frames += 1
            for d in detections[frame_idx]:
                if not any(
                    np.hypot(d.blob.cx - s.x, d.blob.cy - s.y) < 14.0
                    for s in truths
                ):
                    false_pos += 1
        assert false_pos / n_frames < 0.2

    def test_centroids_close_to_truth(self, small_tunnel, detections):
        errors = []
        for frame_idx in range(40, small_tunnel.n_frames, 5):
            for s in small_tunnel.states[frame_idx]:
                if not (10 < s.x < small_tunnel.width - 10):
                    continue
                dists = [
                    np.hypot(d.blob.cx - s.x, d.blob.cy - s.y)
                    for d in detections[frame_idx]
                ]
                if dists and min(dists) < 10:
                    errors.append(min(dists))
        assert errors
        assert np.median(errors) < 3.0

    def test_detection_frame_index_matches(self, detections):
        for frame_idx, dets in enumerate(detections):
            for det in dets:
                assert det.frame == frame_idx

    def test_spcpe_refinement_optional(self, small_tunnel, tunnel_clip):
        fast = SegmentationPipeline(use_spcpe=False)
        dets = fast.process(tunnel_clip)
        assert len(dets) == small_tunnel.n_frames
        assert any(len(d) > 0 for d in dets)

    def test_process_accepts_plain_arrays(self, small_tunnel):
        renderer = Renderer(small_tunnel, seed=5)
        frames = [renderer.render(i) for i in range(60)]
        dets = SegmentationPipeline(use_spcpe=False).process(frames)
        assert len(dets) == 60

    def test_min_area_must_be_positive(self):
        from repro.errors import PipelineError

        with pytest.raises(PipelineError):
            SegmentationPipeline(min_area=0)
