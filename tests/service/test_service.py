"""Multi-tenant retrieval service: routing, session lifecycle,
cross-worker resume, corpus sharing, and the HTTP front end."""

import http.client
import json

import pytest

from repro.db import VideoDatabase
from repro.eval import build_artifacts
from repro.service import RetrievalHTTPServer, RetrievalService


@pytest.fixture(scope="module")
def service_db(tmp_path_factory, small_tunnel, small_intersection):
    """File-backed catalog shared by every service in this module."""
    path = str(tmp_path_factory.mktemp("svc") / "catalog.sqlite")
    with VideoDatabase(path) as db:
        for sim in (small_tunnel, small_intersection):
            artifacts = build_artifacts(sim, mode="oracle")
            db.ingest_simulation(sim, artifacts.tracks, artifacts.dataset)
    return path, [small_tunnel.name, small_intersection.name]


@pytest.fixture()
def service(service_db):
    path, _clips = service_db
    svc = RetrievalService(path)
    yield svc
    svc.close()


def _call(svc, method, target, doc=None):
    body = json.dumps(doc).encode() if doc is not None else None
    status, ctype, payload = svc.handle(method, target, body)
    parsed = json.loads(payload) if ctype == "application/json" else payload
    return status, parsed


def _create(svc, clips, *, user="ana", **extra):
    return _call(svc, "POST", "/sessions",
                 {"user": user, "clips": clips, "event": "accident",
                  **extra})


def _label_round(svc, sid, *, flip=False):
    """Feed a deterministic labeling of the current top ranking."""
    status, doc = _call(svc, "GET", f"/sessions/{sid}/results")
    assert status == 200
    labels = {str(r["bag_id"]): (i % 2 == 0) != flip
              for i, r in enumerate(doc["results"])}
    return _call(svc, "POST", f"/sessions/{sid}/feed", {"labels": labels})


class TestRouting:
    def test_index_lists_endpoints(self, service):
        status, doc = _call(service, "GET", "/")
        assert status == 200
        assert "POST /sessions" in doc["endpoints"]

    def test_unknown_route_404(self, service):
        status, doc = _call(service, "GET", "/nope")
        assert status == 404

    def test_metrics_and_healthz(self, service):
        status, body = service.handle("GET", "/metrics")[0], None
        assert status == 200
        status, doc = _call(service, "GET", "/healthz")
        assert status in (200, 503)
        assert doc["status"] in ("ok", "degraded")

    def test_malformed_json_400(self, service):
        status, _, payload = service.handle("POST", "/sessions",
                                            b"{not json")
        assert status == 400
        assert json.loads(payload)["error"] == "bad_request"


class TestSessionLifecycle:
    def test_create_feed_results_explain(self, service, service_db):
        _, clips = service_db
        status, doc = _create(service, clips, user="casey")
        assert status == 201
        assert doc["round"] == 0 and not doc["resumed"]
        sid = doc["session"]
        assert sid == f"casey:merged:{'+'.join(clips)}:accident"

        status, doc = _label_round(service, sid)
        assert status == 200 and doc["round"] == 1

        status, doc = _call(service, "GET", f"/sessions/{sid}/results")
        assert status == 200
        assert doc["round"] == 1
        assert len(doc["results"]) == 20
        first = doc["results"][0]
        assert {"bag_id", "clip_id", "frame_lo", "frame_hi"} <= set(first)
        assert first["clip_id"] in clips

        status, doc = _call(service, "GET",
                            f"/sessions/{sid}/results?top_k=5")
        assert status == 200 and len(doc["results"]) == 5

        status, doc = _call(service, "GET", f"/sessions/{sid}/explain")
        assert status == 200
        ops = [r["op"] for r in doc["rounds"]]
        assert "feed" in ops
        assert all("spans" not in r and "profile" not in r
                   for r in doc["rounds"])

    def test_recreate_resumes_in_place(self, service, service_db):
        _, clips = service_db
        status, doc = _create(service, clips, user="drew")
        sid = doc["session"]
        _label_round(service, sid)
        status, doc = _create(service, clips, user="drew")
        assert status == 200  # existing session, not a new one
        assert doc["resumed"] and doc["round"] == 1

    def test_info_list_and_close(self, service, service_db):
        _, clips = service_db
        sid = _create(service, clips, user="evan")[1]["session"]
        status, doc = _call(service, "GET", f"/sessions/{sid}")
        assert status == 200 and doc["resident"] and doc["round"] == 0

        status, doc = _call(service, "GET", "/sessions")
        mine = [s for s in doc["sessions"] if s["session"] == sid]
        assert mine and mine[0]["resident"]

        status, doc = _call(service, "DELETE", f"/sessions/{sid}")
        assert status == 200 and doc["closed"]
        status, doc = _call(service, "GET", f"/sessions/{sid}")
        assert status == 200 and not doc["resident"]  # record survives

        # next touch resumes transparently from the catalog
        status, doc = _call(service, "GET", f"/sessions/{sid}/results")
        assert status == 200 and len(doc["results"]) == 20

    def test_unknown_session_404(self, service):
        status, doc = _call(service, "GET", "/sessions/zz:none:x/results")
        assert status == 404 and doc["error"] == "not_found"

    def test_validation_errors(self, service, service_db):
        _, clips = service_db
        assert _create(service, clips, user="a:b")[0] == 400
        assert _create(service, clips, user="")[0] == 400
        assert _create(service, [])[0] == 400
        assert _create(service, clips, engine="nope")[0] == 400
        assert _create(service, clips, params={"evil": 1})[0] == 400
        assert _create(service, clips, params="no")[0] == 400
        sid = _create(service, clips, user="fay")[1]["session"]
        assert _call(service, "POST", f"/sessions/{sid}/feed",
                     {"labels": {}})[0] == 400
        assert _call(service, "GET",
                     f"/sessions/{sid}/results?top_k=0")[0] == 400


class TestCorpusSharing:
    def test_same_corpus_shared_across_users(self, service, service_db):
        _, clips = service_db
        sid_a = _create(service, clips, user="gil")[1]["session"]
        sid_b = _create(service, clips, user="hana")[1]["session"]
        key = f"merged:{'+'.join(clips)}::accident"
        assert service.pool.refcount(key) == 2
        a = service._sessions[sid_a].session
        b = service._sessions[sid_b].session
        assert a.dataset is b.dataset  # one ShardedCorpus, one GramCache
        _call(service, "DELETE", f"/sessions/{sid_a}")
        assert service.pool.refcount(key) == 1

    def test_lru_eviction_keeps_cap(self, service_db):
        path, clips = service_db
        svc = RetrievalService(path, max_sessions=2)
        try:
            for user in ("ira", "jo", "kai"):
                _create(svc, clips, user=user)
            resident = [sid for sid, e in svc._sessions.items()
                        if e.session is not None]
            assert len(resident) == 2
            assert any(sid.startswith("kai:") for sid in resident)
        finally:
            svc.close()


class TestCrossWorkerResume:
    """Acceptance: a session created on one worker resumes with an
    identical ranking on another, and concurrent feeds conflict."""

    def test_resume_on_second_worker_matches(self, service_db):
        path, clips = service_db
        a, b = RetrievalService(path), RetrievalService(path)
        try:
            sid = _create(a, clips, user="lena")[1]["session"]
            _label_round(a, sid)
            _label_round(a, sid, flip=True)
            ranking_a = _call(a, "GET", f"/sessions/{sid}/results")[1]

            status, doc = _call(b, "GET", f"/sessions/{sid}/results")
            assert status == 200
            assert doc["round"] == 2
            assert doc["results"] == ranking_a["results"]
        finally:
            a.close()
            b.close()

    def test_concurrent_feed_conflicts_with_409(self, service_db):
        path, clips = service_db
        a, b = RetrievalService(path), RetrievalService(path)
        try:
            sid = _create(a, clips, user="mara")[1]["session"]
            # both workers materialize the session at round 0
            ranking_b = _call(b, "GET", f"/sessions/{sid}/results")[1]
            assert ranking_b["round"] == 0

            assert _label_round(a, sid)[0] == 200  # worker A wins
            status, doc = _label_round(b, sid)     # worker B loses loudly
            assert status == 409
            assert doc["error"] == "session_conflict"
            assert doc["round"] == 1  # already resynced onto A's history
            # B's retry against the synced state succeeds as round 1
            assert _label_round(b, sid)[0] == 200
            assert _call(a, "GET", f"/sessions/{sid}")[1]["round"] == 1
        finally:
            a.close()
            b.close()


class TestHTTPServer:
    def test_end_to_end_over_http(self, service_db):
        path, clips = service_db
        svc = RetrievalService(path)
        with RetrievalHTTPServer(svc, port=0, max_workers=4) as server:
            conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                              timeout=30)

            def req(method, target, doc=None):
                body = json.dumps(doc).encode() if doc is not None else None
                conn.request(method, target, body=body)
                resp = conn.getresponse()
                data = resp.read()
                if resp.headers.get_content_type() == "application/json":
                    return resp.status, json.loads(data)
                return resp.status, data

            status, doc = req("POST", "/sessions",
                              {"user": "nia", "clips": clips,
                               "event": "accident", "top_k": 8})
            assert status == 201
            sid = doc["session"]

            status, doc = req("GET", f"/sessions/{sid}/results")
            assert status == 200 and len(doc["results"]) == 8
            labels = {str(r["bag_id"]): True for r in doc["results"][:4]}
            status, doc = req("POST", f"/sessions/{sid}/feed",
                              {"labels": labels})
            assert status == 200 and doc["round"] == 1

            status, body = req("GET", "/metrics")
            assert status == 200
            assert b"service_requests_total" in body
            status, _ = req("GET", "/healthz")
            assert status in (200, 503)
            status, doc = req("GET", "/sessions/none")
            assert status == 404
            conn.close()
        svc.close()

    def test_keep_alive_and_bad_request(self, service_db):
        path, _clips = service_db
        svc = RetrievalService(path)
        with RetrievalHTTPServer(svc, port=0) as server:
            conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                              timeout=30)
            for _ in range(3):  # several requests down one connection
                conn.request("GET", "/")
                resp = conn.getresponse()
                assert resp.status == 200
                resp.read()
            conn.close()

            import socket
            raw = socket.create_connection(("127.0.0.1", server.port),
                                           timeout=30)
            raw.sendall(b"BOGUS\r\n\r\n")
            reply = raw.recv(4096)
            assert reply.startswith(b"HTTP/1.1 400")
            raw.close()
        svc.close()

    def test_port_conflict_raises(self, service_db):
        path, _clips = service_db
        svc = RetrievalService(path)
        with RetrievalHTTPServer(svc, port=0) as server:
            other = RetrievalHTTPServer(svc, port=server.port)
            with pytest.raises(OSError):
                other.start()
        svc.close()
