"""Tests for the command-line interface (calling main() in-process)."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def db_path(tmp_path):
    return str(tmp_path / "videos.db")


def _simulate(db_path, **overrides):
    argv = ["simulate", "--scenario", "tunnel", "--frames", "600",
            "--seed", "3", "--db", db_path, "--mode", "oracle"]
    for key, value in overrides.items():
        argv += [f"--{key.replace('_', '-')}", str(value)]
    return main(argv)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--scenario", "moon",
                                       "--db", "x.db"])


class TestSimulateAndInspect:
    def test_simulate_creates_database(self, db_path, capsys):
        assert _simulate(db_path) == 0
        out = capsys.readouterr().out
        assert "ingested into" in out
        assert "video sequences" in out

    def test_clips_lists_ingested(self, db_path, capsys):
        _simulate(db_path)
        assert main(["clips", "--db", db_path]) == 0
        out = capsys.readouterr().out
        assert "tunnel" in out
        assert "location=tunnel" in out

    def test_clips_metadata_filter(self, db_path, capsys):
        _simulate(db_path)
        assert main(["clips", "--db", db_path,
                     "--location", "atlantis"]) == 0
        assert "(no clips)" in capsys.readouterr().out

    def test_info_shows_datasets(self, db_path, capsys):
        _simulate(db_path)
        assert main(["info", "--db", db_path, "--clip", "tunnel"]) == 0
        out = capsys.readouterr().out
        assert "dataset 'accident'" in out
        assert "tracks:" in out

    def test_info_unknown_clip_fails_cleanly(self, db_path, capsys):
        _simulate(db_path)
        assert main(["info", "--db", db_path, "--clip", "ghost"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_custom_clip_id(self, db_path, capsys):
        _simulate(db_path, clip_id="cam7-morning")
        main(["clips", "--db", db_path])
        assert "cam7-morning" in capsys.readouterr().out


class TestQueryAndLabel:
    def test_query_prints_topk(self, db_path, capsys):
        _simulate(db_path)
        assert main(["query", "--db", db_path, "--clip", "tunnel",
                     "--event", "accident", "--top-k", "5"]) == 0
        out = capsys.readouterr().out
        assert "round=0" in out
        assert out.count("VS") == 5

    def test_label_then_query_advances_round(self, db_path, capsys):
        _simulate(db_path)
        main(["query", "--db", db_path, "--clip", "tunnel",
              "--top-k", "3"])
        first = capsys.readouterr().out
        bag_ids = [line.split()[2] for line in first.splitlines()
                   if ". VS" in line.replace("  ", " ")]
        assert main(["label", "--db", db_path, "--clip", "tunnel",
                     "--relevant", bag_ids[0],
                     "--irrelevant", ",".join(bag_ids[1:])]) == 0
        out = capsys.readouterr().out
        assert "recorded round 0" in out
        main(["query", "--db", db_path, "--clip", "tunnel",
              "--top-k", "3"])
        assert "round=1" in capsys.readouterr().out

    def test_label_without_ids_errors(self, db_path, capsys):
        _simulate(db_path)
        assert main(["label", "--db", db_path, "--clip", "tunnel"]) == 2
        assert "nothing to label" in capsys.readouterr().err

    def test_weighted_rf_engine_selectable(self, db_path, capsys):
        _simulate(db_path)
        assert main(["query", "--db", db_path, "--clip", "tunnel",
                     "--engine", "weighted_rf", "--top-k", "3"]) == 0


class TestNominatorFlags:
    def _two_clips(self, db_path):
        _simulate(db_path)
        _simulate(db_path, scenario="intersection")

    def test_ivf_query_multi_clip(self, db_path, capsys):
        self._two_clips(db_path)
        assert main(["query", "--db", db_path,
                     "--clips", "tunnel,intersection",
                     "--nominator", "ivf", "--index-cells", "16",
                     "--nprobe", "4", "--top-k", "5"]) == 0
        assert capsys.readouterr().out.count("VS") == 5

    def test_nprobe_without_ivf_rejected(self, db_path, capsys):
        self._two_clips(db_path)
        assert main(["query", "--db", db_path,
                     "--clips", "tunnel,intersection",
                     "--nprobe", "4"]) == 1
        assert "--nominator ivf" in capsys.readouterr().err

    def test_nominator_needs_multi_clip(self, db_path, capsys):
        _simulate(db_path)
        assert main(["query", "--db", db_path, "--clip", "tunnel",
                     "--nominator", "ivf"]) == 2
        assert "multi-clip" in capsys.readouterr().err

    def test_experiment_without_nominator_support_rejected(self, capsys):
        assert main(["experiment", "--name", "other_events",
                     "--nominator", "ivf"]) == 1
        assert "does not take --nominator" in capsys.readouterr().err

    def test_experiment_nprobe_requires_ivf(self, capsys):
        assert main(["experiment", "--name", "sharded_nomination",
                     "--nprobe", "2"]) == 1
        assert "--nominator ivf" in capsys.readouterr().err


class TestMaintenanceCommands:
    def test_export_import_roundtrip(self, db_path, tmp_path, capsys):
        _simulate(db_path)
        bundle = str(tmp_path / "tunnel.npz")
        assert main(["export-clip", "--db", db_path, "--clip", "tunnel",
                     "--out", bundle]) == 0
        other_db = str(tmp_path / "other.db")
        assert main(["import-clip", "--db", other_db,
                     "--bundle", bundle]) == 0
        main(["clips", "--db", other_db])
        assert "tunnel" in capsys.readouterr().out

    def test_delete_clip(self, db_path, capsys):
        _simulate(db_path)
        assert main(["delete-clip", "--db", db_path,
                     "--clip", "tunnel"]) == 0
        main(["clips", "--db", db_path])
        assert "(no clips)" in capsys.readouterr().out

    def test_delete_unknown_clip_errors(self, db_path, capsys):
        _simulate(db_path)
        assert main(["delete-clip", "--db", db_path,
                     "--clip", "ghost"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_import_duplicate_needs_replace(self, db_path, tmp_path,
                                            capsys):
        _simulate(db_path)
        bundle = str(tmp_path / "tunnel.npz")
        main(["export-clip", "--db", db_path, "--clip", "tunnel",
              "--out", bundle])
        capsys.readouterr()
        assert main(["import-clip", "--db", db_path,
                     "--bundle", bundle]) == 1
        assert "already exists" in capsys.readouterr().err
        assert main(["import-clip", "--db", db_path, "--bundle", bundle,
                     "--replace"]) == 0


class TestExperiment:
    def test_experiment_other_events(self, capsys):
        assert main(["experiment", "--name", "other_events"]) == 0
        out = capsys.readouterr().out
        assert "other_events" in out
        assert "u_turn" in out

    def test_experiment_unknown_name_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "--name", "figure42"])
