"""Tests for experiment plumbing: artifacts, protocol, reporting."""

import numpy as np
import pytest

from repro.core import MILRetrievalEngine, WeightedRFEngine
from repro.errors import ConfigurationError
from repro.eval import build_artifacts, run_protocol
from repro.eval.reporting import comparison_table, format_series_table


@pytest.fixture(scope="module")
def artifacts(small_tunnel):
    return build_artifacts(small_tunnel, mode="oracle")


class TestBuildArtifacts:
    def test_oracle_mode(self, artifacts, small_tunnel):
        assert artifacts.result is small_tunnel
        assert artifacts.tracks
        assert len(artifacts.dataset) > 0
        assert artifacts.relevant_bag_ids

    def test_vision_mode(self, small_tunnel):
        art = build_artifacts(small_tunnel, mode="vision")
        assert art.dataset.n_instances > 0

    def test_bad_mode(self, small_tunnel):
        with pytest.raises(ConfigurationError):
            build_artifacts(small_tunnel, mode="psychic")

    def test_window_size_parameter(self, small_tunnel):
        w5 = build_artifacts(small_tunnel, mode="oracle", window_size=5)
        assert w5.dataset.window_size == 5
        inst = w5.dataset.all_instances()[0]
        assert inst.matrix.shape[0] == 5

    def test_event_parameter(self, small_tunnel):
        art = build_artifacts(small_tunnel, mode="oracle", event="speeding")
        assert art.dataset.event_name == "speeding"
        assert art.dataset.feature_names == ("velocity", "vdiff")


class TestRunProtocol:
    def test_protocol_result_fields(self, artifacts):
        res = run_protocol(artifacts, MILRetrievalEngine,
                           method="MIL", rounds=3, top_k=10)
        assert res.method == "MIL"
        assert len(res.accuracies) == 3
        assert 0 < res.n_bags
        assert 0 <= res.n_relevant_total <= res.n_bags
        assert res.initial == res.accuracies[0]
        assert res.final == res.accuracies[-1]
        assert res.gain == pytest.approx(res.final - res.initial)
        assert 0 < res.ceiling <= 1.0

    def test_engine_kwargs_forwarded(self, artifacts):
        res = run_protocol(artifacts, MILRetrievalEngine, rounds=2,
                           top_k=10, training_policy="top2", z=0.1)
        assert "last_nu" in res.extras

    def test_rounds_validated(self, artifacts):
        with pytest.raises(ConfigurationError):
            run_protocol(artifacts, MILRetrievalEngine, rounds=0)

    def test_weighted_rf_runs(self, artifacts):
        res = run_protocol(artifacts, WeightedRFEngine, rounds=3, top_k=10)
        assert len(res.accuracies) == 3

    def test_label_noise_changes_labels(self, artifacts):
        clean = run_protocol(artifacts, MILRetrievalEngine, rounds=3,
                             top_k=10)
        noisy = run_protocol(artifacts, MILRetrievalEngine, rounds=3,
                             top_k=10, flip_prob=0.5, user_seed=3)
        assert clean.accuracies != noisy.accuracies


class TestReporting:
    def test_series_table_contains_all_methods(self):
        table = format_series_table(
            {"MIL": [0.4, 0.5], "WRF": [0.4, 0.45]})
        assert "MIL" in table and "WRF" in table
        assert "Initial" in table and "First" in table
        assert "40%" in table

    def test_series_table_raw_numbers(self):
        table = format_series_table({"m": [0.333]}, as_percent=False)
        assert "0.333" in table

    def test_empty_series(self):
        assert format_series_table({}) == "(no data)"

    def test_comparison_table_full(self, artifacts):
        from repro.eval.experiments import ExperimentResult

        res = ExperimentResult(name="exp", series={},
                               expectation="goes up", metadata={"seed": 0})
        res.add("MIL", run_protocol(artifacts, MILRetrievalEngine,
                                    method="MIL", rounds=2, top_k=10))
        text = comparison_table(res)
        assert "exp" in text
        assert "goes up" in text
        assert "ceiling" in text
