"""Smoke + shape tests for the experiment runners (oracle mode, small)."""

import pytest

from repro.eval.experiments import (
    ablation_normalization,
    ablation_window,
    ablation_z,
    mil_algorithms,
    other_events,
)


class TestAblationZ:
    def test_series_per_z(self):
        res = ablation_z(zs=(0.0, 0.05), seed=1)
        assert set(res.series) == {"z=0", "z=0.05"}
        for accs in res.series.values():
            assert len(accs) == 5

    def test_nu_changes_with_z(self):
        res = ablation_z(zs=(0.0, 0.2), seed=1)
        nus = [p.extras["last_nu"] for p in res.protocols.values()]
        assert nus[0] != nus[1]


class TestAblationNormalization:
    def test_three_variants(self):
        res = ablation_normalization(seed=1)
        assert set(res.series) == {"percentage", "linear", "none"}


class TestAblationWindow:
    def test_window_sizes_run(self):
        res = ablation_window(windows=(2, 3), seed=3)
        assert set(res.series) == {"window=2", "window=3"}


class TestOtherEvents:
    def test_uturn_and_speeding_learnable(self):
        res = other_events(seed=2)
        assert set(res.series) == {"u_turn", "speeding"}
        for event, accs in res.series.items():
            assert max(accs) > 0.0, f"{event} never retrieved anything"

    def test_speeding_improves_or_holds(self):
        res = other_events(seed=2)
        accs = res.series["speeding"]
        assert accs[-1] >= accs[0]


class TestMilAlgorithms:
    @pytest.mark.slow
    def test_all_engines_complete(self):
        res = mil_algorithms(seed=1)
        assert set(res.series) == {"OCSVM", "DD", "EM-DD", "Weighted_RF"}
        for accs in res.series.values():
            assert len(accs) == 5
