"""Tests for multi-seed protocol aggregation."""

import numpy as np
import pytest

from repro.core import MILRetrievalEngine, WeightedRFEngine
from repro.errors import ConfigurationError
from repro.eval import build_artifacts
from repro.eval.protocol import run_protocol_multi
from repro.sim import tunnel


def _artifacts_for(seed):
    sim = tunnel(n_frames=700, seed=seed, spawn_interval=(50.0, 80.0),
                 n_wall_crashes=2, n_sudden_stops=2)
    return build_artifacts(sim, mode="oracle")


class TestRunProtocolMulti:
    def test_aggregates_over_seeds(self):
        result = run_protocol_multi(_artifacts_for, MILRetrievalEngine,
                                    seeds=(1, 2, 3), method="MIL",
                                    rounds=3, top_k=10)
        assert result.seeds == (1, 2, 3)
        assert len(result.runs) == 3
        assert len(result.mean_accuracies) == 3
        curves = np.asarray([r.accuracies for r in result.runs])
        assert result.mean_accuracies == pytest.approx(
            curves.mean(axis=0).tolist())
        assert result.std_accuracies == pytest.approx(
            curves.std(axis=0).tolist())

    def test_mean_helpers(self):
        result = run_protocol_multi(_artifacts_for, MILRetrievalEngine,
                                    seeds=(1, 2), rounds=3, top_k=10)
        assert result.mean_final == pytest.approx(
            result.mean_accuracies[-1])
        gains = [r.gain for r in result.runs]
        assert result.mean_gain == pytest.approx(np.mean(gains))

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigurationError):
            run_protocol_multi(_artifacts_for, MILRetrievalEngine, seeds=())

    def test_mil_beats_baseline_on_mean_gain(self):
        """The headline comparison, stabilized over three seeds."""
        mil = run_protocol_multi(_artifacts_for, MILRetrievalEngine,
                                 seeds=(1, 2, 3), rounds=4, top_k=10)
        wrf = run_protocol_multi(_artifacts_for, WeightedRFEngine,
                                 seeds=(1, 2, 3), rounds=4, top_k=10)
        assert mil.mean_gain >= wrf.mean_gain
        assert mil.mean_final >= wrf.mean_final
