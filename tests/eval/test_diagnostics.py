"""Tests for instance-level discovery diagnostics."""

import pytest

from repro.core import MILRetrievalEngine, OracleUser, RetrievalSession
from repro.errors import ConfigurationError
from repro.eval import build_artifacts
from repro.eval.diagnostics import InstanceDiscovery, evaluate_instance_discovery


@pytest.fixture(scope="module")
def artifacts(small_tunnel):
    return build_artifacts(small_tunnel, mode="oracle")


class TestEvaluateInstanceDiscovery:
    def test_heuristic_beats_chance(self, artifacts):
        engine = MILRetrievalEngine(artifacts.dataset)
        report = evaluate_instance_discovery(artifacts, engine)
        assert report.n_bags > 0
        assert report.top1_precision >= report.random_top1

    def test_metrics_bounded(self, artifacts):
        engine = MILRetrievalEngine(artifacts.dataset)
        session = RetrievalSession(engine,
                                   OracleUser(artifacts.ground_truth),
                                   top_k=10)
        session.run(2)
        report = evaluate_instance_discovery(artifacts, engine)
        assert 0.0 <= report.top1_precision <= 1.0
        assert 0.0 <= report.mean_reciprocal_rank <= 1.0
        assert 0.0 < report.random_top1 <= 1.0

    def test_mrr_at_least_top1(self, artifacts):
        engine = MILRetrievalEngine(artifacts.dataset)
        report = evaluate_instance_discovery(artifacts, engine)
        assert report.mean_reciprocal_rank >= report.top1_precision

    def test_mismatched_dataset_rejected(self, artifacts, small_tunnel):
        other = build_artifacts(small_tunnel, mode="oracle")
        engine = MILRetrievalEngine(other.dataset)
        with pytest.raises(ConfigurationError, match="share"):
            evaluate_instance_discovery(artifacts, engine)

    def test_no_matching_kinds_gives_empty_report(self, artifacts):
        engine = MILRetrievalEngine(artifacts.dataset)
        report = evaluate_instance_discovery(artifacts, engine,
                                             kinds=["u_turn"])
        assert report == InstanceDiscovery(0, 0.0, 0.0, 0.0)
