"""Tests for terminal charts."""

import pytest

from repro.errors import ConfigurationError
from repro.eval.charts import line_chart, sparkline


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([0.0, 0.25, 0.5, 0.75, 1.0])
        assert len(line) == 5
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert list(line) == sorted(line)

    def test_clamping(self):
        line = sparkline([-1.0, 2.0])
        assert line == "▁█"

    def test_custom_range(self):
        assert sparkline([50.0], lo=0, hi=100)[0] in "▄▅"

    def test_bad_range(self):
        with pytest.raises(ConfigurationError):
            sparkline([0.5], lo=1.0, hi=0.0)


class TestLineChart:
    def test_contains_markers_and_legend(self):
        chart = line_chart({"MIL": [0.4, 0.6, 0.8],
                            "WRF": [0.4, 0.45, 0.45]})
        assert "A=MIL" in chart
        assert "B=WRF" in chart
        assert "r0" in chart and "r2" in chart
        assert "%" in chart

    def test_collision_marked(self):
        chart = line_chart({"a": [0.5], "b": [0.5]})
        assert "*" in chart

    def test_higher_value_on_higher_row(self):
        chart = line_chart({"a": [0.1, 0.9]}, height=10)
        rows = [line for line in chart.splitlines() if "|" in line]
        first_marker_row = next(i for i, r in enumerate(rows) if "A" in r)
        last_marker_row = max(i for i, r in enumerate(rows) if "A" in r)
        assert first_marker_row < last_marker_row  # 0.9 printed above 0.1

    def test_empty(self):
        assert line_chart({}) == "(no data)"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            line_chart({"a": [0.5]}, height=1)
        with pytest.raises(ConfigurationError):
            line_chart({"a": [0.5]}, lo=1.0, hi=0.0)
