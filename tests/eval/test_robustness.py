"""Tests for failure injection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.eval.robustness import (
    inject_detection_dropout,
    inject_occlusion_band,
    robustness_label_noise,
)
from repro.vision.blobs import Blob
from repro.vision.pipeline import Detection


def _det(frame, x, y=50.0):
    blob = Blob(cx=float(x), cy=float(y), x0=int(x) - 5, y0=int(y) - 3,
                x1=int(x) + 5, y1=int(y) + 3, area=60, mean_intensity=200.0)
    return Detection(frame=frame, blob=blob)


@pytest.fixture()
def detections():
    return [[_det(f, 10.0 + 3 * f)] for f in range(50)]


class TestDetectionDropout:
    def test_zero_prob_is_identity(self, detections):
        out = inject_detection_dropout(detections, 0.0)
        assert all(len(a) == len(b) for a, b in zip(out, detections))

    def test_one_prob_blanks_everything(self, detections):
        out = inject_detection_dropout(detections, 1.0)
        assert all(dets == [] for dets in out)

    def test_rate_roughly_matches_prob(self, detections):
        out = inject_detection_dropout(detections * 10, 0.3, seed=1)
        rate = np.mean([len(d) == 0 for d in out])
        assert rate == pytest.approx(0.3, abs=0.08)

    def test_deterministic_given_seed(self, detections):
        a = inject_detection_dropout(detections, 0.4, seed=5)
        b = inject_detection_dropout(detections, 0.4, seed=5)
        assert [len(x) for x in a] == [len(x) for x in b]

    def test_original_untouched(self, detections):
        inject_detection_dropout(detections, 1.0)
        assert all(len(d) == 1 for d in detections)

    def test_bad_prob_rejected(self, detections):
        with pytest.raises(ConfigurationError):
            inject_detection_dropout(detections, 1.5)


class TestOcclusionBand:
    def test_band_removes_only_inside(self, detections):
        out = inject_occlusion_band(detections, 50.0, 100.0)
        for dets_in, dets_out in zip(detections, out):
            x = dets_in[0].blob.cx
            if 50.0 <= x < 100.0:
                assert dets_out == []
            else:
                assert len(dets_out) == 1

    def test_degenerate_band_rejected(self, detections):
        with pytest.raises(ConfigurationError):
            inject_occlusion_band(detections, 100.0, 100.0)

    def test_tracker_survives_band(self, detections):
        from repro.tracking import CentroidTracker

        out = inject_occlusion_band(detections, 60.0, 90.0)
        tracks = CentroidTracker(max_misses=4,
                                 min_track_length=4).track(out)
        # The ~10-frame hole either gets coasted (1 track) or splits the
        # vehicle into two tracks; it must not vanish.
        assert 1 <= len(tracks) <= 2


class TestLabelNoiseSweep:
    def test_sweep_runs_and_clean_is_best(self, small_tunnel):
        result = robustness_label_noise(small_tunnel,
                                        flip_probs=(0.0, 0.35),
                                        top_k=10, rounds=3)
        clean = result.series["flip=0"]
        noisy = result.series["flip=0.35"]
        assert len(clean) == 3
        assert clean[-1] >= noisy[-1] - 0.21  # noisy may get lucky once
