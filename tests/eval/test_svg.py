"""Tests for the SVG figure writer."""

import xml.etree.ElementTree as ET

import pytest

from repro.errors import ConfigurationError
from repro.eval.svg import save_chart, svg_line_chart

SVG_NS = "{http://www.w3.org/2000/svg}"


def _parse(svg_text):
    return ET.fromstring(svg_text)


class TestSvgLineChart:
    def test_valid_xml_with_one_polyline_per_series(self):
        svg = svg_line_chart({"MIL": [0.4, 0.6, 0.8],
                              "WRF": [0.4, 0.45, 0.5]})
        root = _parse(svg)
        polylines = root.findall(f"{SVG_NS}polyline")
        assert len(polylines) == 2

    def test_title_and_legend_text(self):
        svg = svg_line_chart({"MIL_OCSVM": [0.5]}, title="figure8")
        root = _parse(svg)
        texts = [t.text for t in root.findall(f"{SVG_NS}text")]
        assert "figure8" in texts
        assert "MIL_OCSVM" in texts

    def test_round_names_on_axis(self):
        svg = svg_line_chart({"m": [0.1, 0.2]})
        texts = [t.text for t in _parse(svg).findall(f"{SVG_NS}text")]
        assert "Initial" in texts and "First" in texts

    def test_higher_accuracy_is_higher_on_canvas(self):
        svg = svg_line_chart({"m": [0.2, 0.9]})
        polyline = _parse(svg).find(f"{SVG_NS}polyline")
        points = [tuple(map(float, p.split(",")))
                  for p in polyline.attrib["points"].split()]
        assert points[1][1] < points[0][1]  # SVG y grows downward

    def test_values_clamped_to_y_max(self):
        svg = svg_line_chart({"m": [2.0]})
        assert _parse(svg) is not None  # no crash, valid document

    def test_escaping(self):
        svg = svg_line_chart({"a<b&c": [0.5]}, title="x<y>")
        root = _parse(svg)  # would raise on unescaped text
        texts = [t.text for t in root.findall(f"{SVG_NS}text")]
        assert "a<b&c" in texts

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            svg_line_chart({})
        with pytest.raises(ConfigurationError):
            svg_line_chart({"m": [0.5]}, y_max=0)

    def test_save_chart(self, tmp_path):
        path = save_chart({"m": [0.3, 0.4]}, tmp_path / "fig.svg",
                          title="t")
        assert path.exists()
        assert path.read_text().startswith("<svg")
