"""Parallel ingestion: identical artifacts to the serial path, plus the
IngestTask determinism contract."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.eval.parallel import (
    IngestTask,
    artifacts_for_seeds,
    build_artifacts_parallel,
    run_ingest_task,
)


def _assert_same_artifacts(a, b):
    da, db = a.dataset, b.dataset
    assert [bag.bag_id for bag in da.bags] == [bag.bag_id for bag in db.bags]
    assert da.n_instances == db.n_instances
    for bag_a, bag_b in zip(da.bags, db.bags):
        assert bag_a.frame_range == bag_b.frame_range
        np.testing.assert_array_equal(bag_a.instance_matrix(),
                                      bag_b.instance_matrix())


def test_ingest_task_rejects_unknown_scenario():
    with pytest.raises(ConfigurationError, match="unknown scenario"):
        IngestTask(scenario="motorway", seed=0)


def test_build_artifacts_parallel_rejects_bad_workers():
    with pytest.raises(ConfigurationError, match="max_workers"):
        build_artifacts_parallel([IngestTask("tunnel", 0)], max_workers=0)


def test_empty_task_list():
    assert build_artifacts_parallel([]) == []


def test_run_ingest_task_is_deterministic():
    task = IngestTask(scenario="tunnel", seed=7,
                      build_kwargs={"mode": "oracle"})
    _assert_same_artifacts(run_ingest_task(task), run_ingest_task(task))


def test_parallel_matches_serial():
    tasks = [IngestTask("tunnel", s, build_kwargs={"mode": "oracle"})
             for s in (0, 1)]
    serial = build_artifacts_parallel(tasks, max_workers=1)
    parallel = build_artifacts_parallel(tasks, max_workers=2)
    assert len(serial) == len(parallel) == 2
    for a, b in zip(serial, parallel):
        _assert_same_artifacts(a, b)


def test_artifacts_for_seeds_keys_and_order():
    seeds = (3, 1)
    built = artifacts_for_seeds("tunnel", seeds, mode="oracle",
                                max_workers=1)
    assert tuple(built) == seeds
    # Task-order results: each seed's artifacts match a direct build.
    direct = run_ingest_task(
        IngestTask("tunnel", 3, build_kwargs={"mode": "oracle"}))
    _assert_same_artifacts(built[3], direct)
