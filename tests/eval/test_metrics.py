"""Tests for retrieval metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.eval import accuracy_at_k, accuracy_curve, average_precision, overall_gain


class TestAccuracyAtK:
    def test_basic(self):
        assert accuracy_at_k([1, 2, 3, 4], {1, 3}) == pytest.approx(0.5)

    def test_k_truncates(self):
        assert accuracy_at_k([1, 2, 3, 4], {1}, k=2) == pytest.approx(0.5)
        assert accuracy_at_k([1, 2, 3, 4], {4}, k=2) == 0.0

    def test_empty_returned(self):
        assert accuracy_at_k([], {1}) == 0.0

    def test_bad_k(self):
        with pytest.raises(ConfigurationError):
            accuracy_at_k([1], {1}, k=0)

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=30,
                    unique=True),
           st.sets(st.integers(0, 50)))
    @settings(max_examples=50, deadline=None)
    def test_property_bounded(self, returned, relevant):
        acc = accuracy_at_k(returned, relevant)
        assert 0.0 <= acc <= 1.0
        if set(returned) <= relevant:
            assert acc == 1.0
        if not (set(returned) & relevant):
            assert acc == 0.0


class TestAccuracyCurve:
    def test_per_round(self):
        rounds = [[1, 2], [1, 3], [3, 4]]
        curve = accuracy_curve(rounds, {1, 4})
        assert curve == pytest.approx([0.5, 0.5, 0.5])


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision([1, 2, 9, 8], {1, 2}) == pytest.approx(1.0)

    def test_worst_ranking(self):
        ap = average_precision([9, 8, 1], {1})
        assert ap == pytest.approx(1 / 3)

    def test_no_relevant(self):
        assert average_precision([1, 2], set()) == 0.0

    def test_better_ranking_higher_ap(self):
        good = average_precision([1, 2, 9], {1, 2})
        bad = average_precision([9, 1, 2], {1, 2})
        assert good > bad


class TestOverallGain:
    def test_gain(self):
        assert overall_gain([0.4, 0.5, 0.6]) == pytest.approx(0.2)

    def test_single_round(self):
        assert overall_gain([0.4]) == 0.0

    def test_negative_gain(self):
        assert overall_gain([0.5, 0.3]) == pytest.approx(-0.2)
