"""Tests for the markdown report generator."""

import pytest

from repro.errors import ConfigurationError
from repro.eval.report import REPORT_SUITE, generate_report


class TestGenerateReport:
    def test_subset_report(self, tmp_path):
        out = tmp_path / "report.md"
        seen = []
        text = generate_report(names=["other_events"], out_path=out,
                               progress=seen.append)
        assert out.exists()
        assert out.read_text() == text
        assert "# Reproduction report" in text
        assert "## other_events" in text
        assert "Paper expectation" in text
        assert seen == ["running other_events ..."]

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown experiments"):
            generate_report(names=["figure42"])

    def test_suite_covers_all_figures_and_claims(self):
        names = {name for name, _ in REPORT_SUITE}
        assert {"figure8", "figure9", "ablation_z",
                "ablation_normalization", "ablation_window",
                "other_events", "mil_algorithms",
                "cross_camera"} <= names

    def test_sections_contain_charts(self):
        text = generate_report(names=["other_events"])
        assert "r0" in text  # chart x-axis
        assert "%" in text


class TestReportCLI:
    def test_cli_report_subset(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.md"
        assert main(["report", "--only", "other_events",
                     "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "running other_events" in stdout
        assert out.exists()

    def test_cli_report_stdout(self, capsys):
        from repro.cli import main

        assert main(["report", "--only", "other_events"]) == 0
        assert "## other_events" in capsys.readouterr().out

    def test_cli_experiment_chart_flag(self, capsys):
        from repro.cli import main

        assert main(["experiment", "--name", "other_events",
                     "--chart"]) == 0
        out = capsys.readouterr().out
        assert "r0" in out  # the chart axis is present
