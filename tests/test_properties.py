"""Cross-cutting property-based tests (hypothesis).

Each class targets an invariant that should hold for *any* input, not
just the fixtures: tracker outputs are well-formed for arbitrary
detection streams, window extraction never loses or duplicates
checkpoints, engines always rank a permutation, the database round-trips
arbitrary datasets, stitching never changes total observations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bags import Bag, Instance, MILDataset
from repro.vision.blobs import Blob
from repro.vision.pipeline import Detection


# --------------------------------------------------------------- strategies
@st.composite
def detection_streams(draw):
    """Random per-frame detection lists for a handful of moving targets."""
    n_frames = draw(st.integers(10, 40))
    n_targets = draw(st.integers(0, 3))
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    starts = rng.uniform([0, 0], [100, 100], size=(n_targets, 2))
    vels = rng.uniform(-3, 3, size=(n_targets, 2))
    drop = draw(st.floats(0.0, 0.3))
    frames = []
    for f in range(n_frames):
        dets = []
        for t in range(n_targets):
            if rng.random() < drop:
                continue
            x, y = starts[t] + vels[t] * f
            blob = Blob(cx=float(x), cy=float(y), x0=int(x) - 4,
                        y0=int(y) - 3, x1=int(x) + 4, y1=int(y) + 3,
                        area=48, mean_intensity=150.0)
            dets.append(Detection(frame=f, blob=blob))
        frames.append(dets)
    return frames


@st.composite
def mil_datasets(draw):
    """Random small MIL datasets with consistent ids."""
    n_bags = draw(st.integers(1, 8))
    window, features = 3, 2
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    bags, iid = [], 0
    for b in range(n_bags):
        n_inst = draw(st.integers(0, 4))
        instances = []
        for _ in range(n_inst):
            instances.append(Instance(
                instance_id=iid, bag_id=b, track_id=iid,
                matrix=rng.normal(size=(window, features))))
            iid += 1
        bags.append(Bag(bag_id=b, clip_id="prop", frame_lo=b * 15,
                        frame_hi=b * 15 + 14, instances=tuple(instances)))
    return MILDataset(clip_id="prop", event_name="accident",
                      feature_names=("f0", "f1"), window_size=window,
                      sampling_rate=5, bags=bags)


# ------------------------------------------------------------------ tracker
class TestTrackerProperties:
    @given(detection_streams())
    @settings(max_examples=30, deadline=None)
    def test_tracks_always_well_formed(self, stream):
        from repro.tracking import CentroidTracker

        tracks = CentroidTracker(min_track_length=2).track(stream)
        n_detections = sum(len(d) for d in stream)
        n_observations = sum(len(t) for t in tracks)
        # Never invent observations.
        assert n_observations <= n_detections
        for track in tracks:
            frames = track.frame_array()
            assert np.all(np.diff(frames) > 0)  # strictly increasing
            assert track.first_frame >= 0
            assert track.last_frame < len(stream)

    @given(detection_streams())
    @settings(max_examples=30, deadline=None)
    def test_stitching_preserves_observations(self, stream):
        from repro.tracking import CentroidTracker, stitch_tracks

        tracks = CentroidTracker(min_track_length=2).track(stream)
        stitched = stitch_tracks(tracks)
        assert sum(len(t) for t in stitched) == sum(len(t) for t in tracks)
        assert len(stitched) <= len(tracks)


# ------------------------------------------------------------------ windows
class TestWindowProperties:
    @given(first=st.integers(0, 50), n=st.integers(12, 120),
           v=st.floats(0.5, 4.0))
    @settings(max_examples=30, deadline=None)
    def test_every_instance_row_comes_from_its_series(self, first, n, v):
        from repro.events import AccidentModel, build_dataset, extract_series
        from repro.events.features import SamplingConfig
        from tests.events.test_features import _track

        track = _track(0, [(v * i, 40.0) for i in range(n)],
                       first_frame=first)
        cfg = SamplingConfig(smooth_window=1)
        series = extract_series([track], cfg)
        dataset = build_dataset(series, AccidentModel(), config=cfg)
        if not series:
            assert len(dataset) == 0
            return
        matrix = AccidentModel().feature_matrix(series[0])
        for bag in dataset.bags:
            for inst in bag.instances:
                # The instance window appears verbatim in the series.
                found = any(
                    np.allclose(matrix[i : i + 3], inst.matrix)
                    for i in range(len(matrix) - 2)
                )
                assert found

    @given(n=st.integers(31, 200), step=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_bag_count_matches_stride_formula(self, n, step):
        from repro.events import AccidentModel, build_dataset, extract_series
        from repro.events.features import SamplingConfig
        from tests.events.test_features import _straight_track

        cfg = SamplingConfig(smooth_window=1)
        series = extract_series([_straight_track(n=n)], cfg)
        dataset = build_dataset(series, AccidentModel(), step=step,
                                config=cfg)
        n_checkpoints = len(series[0])
        expected = max(0, (n_checkpoints - 3) // step + 1)
        assert len(dataset) == expected


# ------------------------------------------------------------------ engines
class TestEngineProperties:
    @given(mil_datasets(), st.integers(0, 5))
    @settings(max_examples=25, deadline=None)
    def test_rank_is_always_a_permutation(self, dataset, n_labels):
        from repro.core import MILRetrievalEngine
        from repro.errors import ConfigurationError

        try:
            engine = MILRetrievalEngine(dataset)
        except ConfigurationError:
            # Degenerate datasets (no bags / all bags empty) must be
            # rejected cleanly, never crash.
            assert dataset.n_instances == 0 or not dataset.bags
            return
        rng = np.random.default_rng(0)
        bag_ids = [b.bag_id for b in dataset.bags]
        labels = {int(b): bool(rng.random() < 0.5)
                  for b in rng.choice(bag_ids,
                                      size=min(n_labels, len(bag_ids)),
                                      replace=False)}
        if labels:
            engine.feed(labels)
        ranking = engine.rank()
        assert sorted(ranking) == sorted(bag_ids)


# ----------------------------------------------------------------- database
class TestDatabaseProperties:
    @given(mil_datasets())
    @settings(max_examples=20, deadline=None)
    def test_dataset_roundtrip(self, dataset):
        from repro.db import ClipRecord, VideoDatabase

        db = VideoDatabase()
        db.add_clip(ClipRecord(clip_id="prop", fps=25.0, n_frames=200,
                               width=320, height=240))
        db.add_dataset(dataset)
        loaded = db.dataset("prop", "accident")
        assert len(loaded) == len(dataset)
        assert loaded.n_instances == dataset.n_instances
        for orig, back in zip(dataset.bags, loaded.bags):
            assert orig.frame_range == back.frame_range
            for oi, bi in zip(orig.instances, back.instances):
                assert np.allclose(oi.matrix, bi.matrix)


# --------------------------------------------------------------------- misc
class TestExperimentSerialization:
    def test_to_json_dict_is_json_serializable(self):
        import json

        from repro.eval.experiments import ExperimentResult
        from repro.eval.protocol import ProtocolResult

        result = ExperimentResult(
            name="x", series={}, expectation="e",
            metadata={"tuple": (1, 2), "arr": np.float64(0.5)})
        result.add("m", ProtocolResult(
            method="m", accuracies=[0.1, 0.2], n_relevant_total=3,
            n_bags=10, top_k=5))
        text = json.dumps(result.to_json_dict())
        assert "expectation" in text
        assert json.loads(text)["summary"]["m"]["final"] == 0.2
