"""Chaos suite: multi-clip retrieval under seeded, injected faults.

The acceptance contract (ISSUE 8): under a deterministic fault plan —
SQLITE_BUSY on shard loads while segments are being appended, blob
corruption in the artifact cache — a degraded-mode
:class:`MultiClipQuerySession` must **never crash and never silently
return an incomplete ranking**: every affected round is flagged
degraded with an accurate coverage report, quarantined shards rejoin
within the reprobe schedule once the faults clear, and a zero-fault
plan is byte-identical to running without the injector at all.

Everything here replays exactly: the plans are seeded, the quarantine
clock is fake, and retry jitter is zero.
"""

import pytest

from repro.db import ClipRecord, MultiClipQuerySession, VideoDatabase
from repro.errors import ShardUnavailableError
from repro.obs import get_telemetry
from repro.reliability import FaultInjector, FaultPlan, FaultRule, RetryPolicy

from tests.core.test_sharded import _clip
from tests.core.test_sharded_degraded import FakeClock

#: Substring unique to the instance SELECT in ``VideoDatabase.dataset``
#: — the statement every shard load runs, and nothing else does.
SHARD_LOAD_SQL = "track_id FROM instances"

CLIPS = (("a", 12, 1), ("b", 9, 2), ("c", 15, 3))
EVENT = "accident"


def _split(dataset, keep):
    """First ``keep`` bags now, the rest as a streamed delta."""
    initial = type(dataset)(
        clip_id=dataset.clip_id, event_name=dataset.event_name,
        feature_names=dataset.feature_names,
        window_size=dataset.window_size,
        sampling_rate=dataset.sampling_rate, bags=list(dataset.bags[:keep]))
    delta = type(dataset)(
        clip_id=dataset.clip_id, event_name=dataset.event_name,
        feature_names=dataset.feature_names,
        window_size=dataset.window_size,
        sampling_rate=dataset.sampling_rate, bags=list(dataset.bags[keep:]))
    return initial, delta


def _seed_db(db, *, hold_back_clip=None, hold_back=3):
    """Store the three toy clips; optionally hold back a streaming delta."""
    deltas = {}
    for clip_id, n_bags, seed in CLIPS:
        dataset = _clip(clip_id, n_bags, seed=seed)
        db.add_clip(ClipRecord(clip_id=clip_id, fps=25.0,
                               n_frames=n_bags * 20, width=320, height=240))
        if clip_id == hold_back_clip:
            dataset, deltas[clip_id] = _split(dataset, n_bags - hold_back)
        db.add_dataset(dataset)
    return deltas


def _session(db, **kwargs):
    kwargs.setdefault("retry_policy",
                      RetryPolicy(base_delay=1.0, backoff=2.0,
                                  max_delay=8.0, jitter=0.0))
    return MultiClipQuerySession(db, [c[0] for c in CLIPS], EVENT,
                                 user_id="chaos", top_k=10, **kwargs)


def _bag_ids_of(corpus, clip_id):
    lo = 0
    for spec in corpus.specs:
        if spec.clip_id == clip_id:
            return set(range(lo, lo + spec.n_bags))
        lo += spec.n_bags
    raise AssertionError(clip_id)


def _coverage_is_accurate(session, ids):
    """The coverage report must account for every bag, exactly."""
    cov = session.last_coverage
    corpus = session.engine.corpus
    assert cov is not None
    assert cov.shards_total == len(CLIPS)
    assert cov.shards_total == len(cov.shards_served) \
        + len(cov.shards_skipped)
    assert cov.bags_total == sum(spec.n_bags for spec in corpus.specs)
    assert cov.bags_missing == sum(o.n_bags for o in cov.shards_skipped)
    missing = {
        bag_id for clip in cov.missing_clip_ids
        for bag_id in _bag_ids_of(corpus, clip)}
    assert len(missing) == cov.bags_missing
    assert not missing & set(ids)
    return cov


class TestChaosSession:
    def test_degraded_session_survives_busy_storms_and_recovers(
            self, tmp_path):
        """Rounds of feedback + concurrent appends under SQLITE_BUSY on
        shard loads: no crash, honest coverage, full recovery."""
        injector = FaultInjector(FaultPlan([
            # Shard loads hit lock contention for a while, then it clears.
            FaultRule(op="db.execute", kind="busy", rate=0.7, limit=4,
                      key_substring=SHARD_LOAD_SQL),
        ], seed=42))
        clock = FakeClock()
        db = VideoDatabase(tmp_path / "v.db",
                           connection_factory=injector.connect)
        deltas = _seed_db(db, hold_back_clip="c")
        session = _session(db, failure_policy="degraded", clock=clock)

        degraded_rounds = 0
        for round_no in range(8):
            ids, cov = session.results_with_coverage()
            _coverage_is_accurate(session, ids)
            if cov.degraded:
                degraded_rounds += 1
            labels = {b: (b % 3 == 0) for b in ids[:3]}
            if labels:  # a fully-dark round serves nothing to label
                session.feed(labels)
            if round_no == 2 and deltas:
                # Ingest-while-querying: the held-back segment lands
                # mid-session; the next rounds absorb it.
                db.append_dataset(deltas.pop("c"), segment=(1, 180, 299))
            clock.advance(1.5)

        # The plan injected real faults and the session absorbed them.
        assert injector.injected
        assert degraded_rounds >= 1
        obs = get_telemetry()
        assert obs.counter("sharded.shard_failures").total() >= 1
        # Only freshly-scored rounds bump the counter (cached rounds
        # re-report coverage without re-scoring), so it is bounded by
        # what the loop observed.
        assert 1 <= obs.counter("sharded.degraded_rounds").total() \
            <= degraded_rounds

        # Faults are exhausted (limit=4): advance past the worst backoff
        # and every shard must rejoin within one reprobe.
        clock.advance(8.0)
        ids, cov = session.results_with_coverage()
        assert not cov.degraded
        assert cov.shards_served == ("a", "b", "c")
        assert cov.bags_total == sum(c[1] for c in CLIPS)
        assert obs.counter("sharded.shard_recoveries").total() >= 1
        db.close()

    def test_strict_session_surfaces_typed_error_not_sqlite(self, tmp_path):
        injector = FaultInjector(FaultPlan([
            FaultRule(op="db.execute", kind="busy", rate=1.0, limit=1,
                      key_substring=SHARD_LOAD_SQL),
        ], seed=7))
        db = VideoDatabase(tmp_path / "v.db",
                           connection_factory=injector.connect)
        _seed_db(db)
        session = _session(db, failure_policy="strict", clock=FakeClock())
        with pytest.raises(ShardUnavailableError) as err:
            session.results()
        # The boundary is typed: no raw sqlite3 error escapes.
        assert err.value.clip_id in {c[0] for c in CLIPS}
        db.close()

    def test_zero_fault_plan_is_byte_identical_to_no_injector(
            self, tmp_path):
        """An empty plan through the whole stack changes nothing."""
        injector = FaultInjector(FaultPlan(seed=0))
        chaos_db = VideoDatabase(tmp_path / "chaos.db",
                                 connection_factory=injector.connect)
        plain_db = VideoDatabase(tmp_path / "plain.db")
        _seed_db(chaos_db)
        _seed_db(plain_db)
        chaos = _session(chaos_db, failure_policy="degraded",
                         clock=FakeClock())
        plain = MultiClipQuerySession(plain_db, [c[0] for c in CLIPS],
                                      EVENT, user_id="chaos", top_k=10)
        for _ in range(4):
            ids, cov = chaos.results_with_coverage()
            assert not cov.degraded
            assert ids == plain.results()
            labels = {b: (b % 3 == 0) for b in ids[:3]}
            chaos.feed(labels)
            plain.feed(labels)
        assert injector.injected == []
        chaos_db.close()
        plain_db.close()


class TestChaosIngest:
    def test_ingest_replay_selfheals_injected_blob_corruption(
            self, tmp_path, small_intersection):
        """Corrupting cached segment blobs mid-replay exercises the
        store's production checksum/quarantine/recompute path — the
        second ingest still lands byte-identically."""
        from repro.db import StreamingIngest
        from repro.pipeline import DiskArtifactStore

        store = DiskArtifactStore(tmp_path / "store")
        db1 = VideoDatabase()
        StreamingIngest(db1, small_intersection, segment_frames=150,
                        store=store).run()
        reference = db1.dataset(small_intersection.name, EVENT)

        injector = FaultInjector(FaultPlan([
            FaultRule(op="store.load", kind="corrupt", calls=(2,)),
        ], seed=3))
        faulty_store = injector.wrap_artifact_store(store)
        db2 = VideoDatabase()
        ingest = StreamingIngest(db2, small_intersection,
                                 segment_frames=150, store=faulty_store)
        ingest.run()
        replayed = db2.dataset(small_intersection.name, EVENT)

        assert [b.bag_id for b in replayed.bags] == \
            [b.bag_id for b in reference.bags]
        assert [i.instance_id for i in replayed.all_instances()] == \
            [i.instance_id for i in reference.all_instances()]
        # The corruption really happened and was really quarantined.
        assert [f.kind for f in injector.injected] == ["corrupt"]
        assert len(store.quarantined) == 1
        assert get_telemetry().counter("store.quarantined").total() == 1
