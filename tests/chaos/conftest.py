"""Chaos-suite fixtures: telemetry isolation per test.

The chaos runs assert on fault/degraded-round counters, so each test
gets its own process-wide registry (same pattern as ``tests/obs``).
"""

import pytest

from repro.obs import Telemetry, set_telemetry


@pytest.fixture(autouse=True)
def fresh_telemetry():
    telemetry = Telemetry()
    previous = set_telemetry(telemetry)
    yield telemetry
    set_telemetry(previous)
