"""Streaming-vs-batch equivalence: the tentpole acceptance criterion.

Streaming a clip in k segments must be *bag-for-bag and
ranking-for-ranking identical* to the batch pipeline — same bag ids and
frame spans, same instances (track ids and feature matrices), same final
tracks, and the same round-1 ranking after identical feedback.  Asserted
for k in {2, 3, 7} on both fixture clips.
"""

import numpy as np
import pytest

from repro.core import MILRetrievalEngine
from repro.pipeline import PipelineConfig, SegmentedRunner


def frames_per_segment(n_frames: int, k: int) -> int:
    """Smallest segment length that splits ``n_frames`` into k segments."""
    return -(-n_frames // k)


def assert_datasets_equal(streamed, batch):
    assert streamed.clip_id == batch.clip_id
    assert streamed.event_name == batch.event_name
    assert streamed.feature_names == batch.feature_names
    assert len(streamed.bags) == len(batch.bags)
    for mine, ref in zip(streamed.bags, batch.bags):
        assert mine.bag_id == ref.bag_id
        assert (mine.frame_lo, mine.frame_hi) == \
            (ref.frame_lo, ref.frame_hi)
        assert [i.instance_id for i in mine.instances] == \
            [i.instance_id for i in ref.instances]
        assert [i.track_id for i in mine.instances] == \
            [i.track_id for i in ref.instances]
        for a, b in zip(mine.instances, ref.instances):
            np.testing.assert_array_equal(a.matrix, b.matrix)


def assert_tracks_equal(streamed, batch):
    assert len(streamed) == len(batch)
    for a, b in zip(streamed, batch):
        assert a.track_id == b.track_id
        assert a.frames == b.frames
        np.testing.assert_array_equal(a.point_array(), b.point_array())


def stream_and_check(sim, batch, k):
    runner = SegmentedRunner(
        PipelineConfig(),
        segment_frames=frames_per_segment(sim.n_frames, k))
    emissions = list(runner.stream(sim))
    assert len(emissions) == k
    assert emissions[-1].final
    artifacts = runner.artifacts
    assert artifacts is not None
    assert_datasets_equal(artifacts.dataset, batch.dataset)
    assert_tracks_equal(artifacts.tracks, batch.tracks)
    # The incremental emissions concatenate to exactly the final dataset.
    concat = [b for e in emissions for b in e.bags]
    assert [b.bag_id for b in concat] == \
        [b.bag_id for b in artifacts.dataset.bags]
    # Frontiers never regress, and every emitted bag is behind its
    # segment's frontier.
    frontiers = [e.frontier for e in emissions]
    assert frontiers == sorted(frontiers)
    for e in emissions[:-1]:
        assert all(b.frame_hi <= e.frontier for b in e.bags)
    return artifacts


class TestStreamEqualsBatch:
    @pytest.mark.parametrize("k", [2, 3, 7])
    def test_tunnel(self, small_tunnel, tunnel_batch, k):
        stream_and_check(small_tunnel, tunnel_batch, k)

    @pytest.mark.parametrize("k", [2, 3, 7])
    def test_intersection(self, small_intersection, intersection_batch,
                          k):
        stream_and_check(small_intersection, intersection_batch, k)


class TestRankingEquivalence:
    def test_round1_ranking_matches_batch(self, small_intersection,
                                          intersection_batch):
        """Identical feedback over streamed vs batch artifacts must
        produce the identical round-1 ranking."""
        runner = SegmentedRunner(
            PipelineConfig(),
            segment_frames=frames_per_segment(
                small_intersection.n_frames, 3))
        streamed = runner.run(small_intersection)
        labels = {b: True
                  for b in sorted(intersection_batch.relevant_bag_ids)}
        assert labels  # the fixture clip has incidents by construction
        mine = MILRetrievalEngine(streamed.dataset)
        ref = MILRetrievalEngine(intersection_batch.dataset)
        assert mine.rank() == ref.rank()  # round 0: heuristic order
        mine.feed(labels)
        ref.feed(labels)
        assert mine.rank() == ref.rank()
