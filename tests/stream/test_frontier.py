"""Unit tests for the stable frontier and the streaming window emitter.

The frontier is the correctness core of streaming ingestion: a window
emitted at or before it must never change once future frames arrive.
These tests pin the per-track rules (uncertain vs certain open tracks),
monotonicity, and the emitter's fail-loud divergence checks on small
synthetic tracks where the expected frontier can be computed by hand.
"""

import pytest

from repro.errors import PipelineError
from repro.events import StreamingWindowEmitter, stable_frontier
from repro.events.features import SamplingConfig
from repro.events.models import event_model_for
from repro.tracking import Track
from repro.vision.blobs import Blob


def make_track(track_id: int, first: int, last: int) -> Track:
    """A straight-line track with one observation per frame."""
    track = Track(track_id)
    for frame in range(first, last + 1):
        track.add(frame, Blob(cx=float(frame), cy=10.0,
                              x0=frame, y0=8, x1=frame + 4, y1=12,
                              area=16, mean_intensity=0.5))
    return track


class TestStableFrontier:
    # Defaults: sampling_rate=5, smooth_window=3 -> h=1; a track is
    # certain once it has >= 5 observations and >= max(2, h+2)=3
    # checkpoints.

    def test_no_open_tracks_frontier_is_last_processed_frame(self):
        assert stable_frontier([], processed_frames=120,
                               min_track_length=5) == 119

    def test_short_track_pins_below_its_first_frame(self):
        # 3 observations < min_track_length: the track may be dropped
        # entirely, so nothing from its span onward is final.
        track = make_track(0, first=40, last=42)
        assert stable_frontier([track], processed_frames=100,
                               min_track_length=5) == 39

    def test_few_checkpoints_pin_below_first_frame(self):
        # 8 observations pass the length gate but cover only
        # checkpoints {40, 45} — fewer than h+2=3, so the smoothed
        # positions that velocity[0] reads are still moving targets.
        track = make_track(0, first=40, last=47)
        assert stable_frontier([track], processed_frames=100,
                               min_track_length=5) == 39

    def test_certain_track_pins_at_last_checkpoint_minus_h(self):
        # Checkpoints 0..30; the last smoothed position with a full
        # window is checkpoint 25 (= 30 - h*rate).
        track = make_track(0, first=0, last=30)
        assert stable_frontier([track], processed_frames=31,
                               min_track_length=5) == 25

    def test_most_conservative_open_track_wins(self):
        certain = make_track(0, first=0, last=60)
        young = make_track(1, first=50, last=52)
        assert stable_frontier([certain, young], processed_frames=70,
                               min_track_length=5) == 49

    def test_wider_smoothing_pulls_the_frontier_back(self):
        track = make_track(0, first=0, last=60)
        near = stable_frontier([track], processed_frames=61,
                               min_track_length=5,
                               config=SamplingConfig(smooth_window=3))
        far = stable_frontier([track], processed_frames=61,
                              min_track_length=5,
                              config=SamplingConfig(smooth_window=5))
        assert far < near


class TestStreamingWindowEmitter:
    def _emitter(self, **over):
        kwargs = dict(clip_id="clip", window_size=3,
                      min_track_length=5)
        kwargs.update(over)
        return StreamingWindowEmitter(event_model_for("accident"),
                                      **kwargs)

    def test_final_emission_with_open_tracks_rejected(self):
        emitter = self._emitter()
        with pytest.raises(PipelineError, match="finish"):
            emitter.emit([], [make_track(0, 0, 50)],
                         processed_frames=51, final=True)

    def test_frontier_is_monotone_across_boundaries(self):
        emitter = self._emitter()
        track = make_track(0, first=0, last=99)
        emitter.emit([], [track], processed_frames=100)
        high = emitter.last_frontier
        # A young second track would pin the raw frontier way back;
        # the emitter must never regress below what it already emitted.
        young = make_track(1, first=100, last=101)
        emitter.emit([], [track, young], processed_frames=102)
        assert emitter.last_frontier >= high

    def test_incremental_emissions_concatenate_to_batch(self):
        emitter = self._emitter()
        track = make_track(0, first=0, last=119)
        emitted = []
        for processed in (40, 80, 100):
            emitted += emitter.emit([], [track],
                                    processed_frames=processed)
        emitted += emitter.emit([track], [], processed_frames=120,
                                final=True)
        batch = self._emitter()
        expected = batch.emit([track], [], processed_frames=120,
                              final=True)
        assert [b.bag_id for b in emitted] == \
            [b.bag_id for b in expected]
        assert [(b.frame_lo, b.frame_hi) for b in emitted] == \
            [(b.frame_lo, b.frame_hi) for b in expected]
        assert emitter.last_dataset is not None
        assert len(emitter.last_dataset.bags) == len(expected)

    def test_nothing_beyond_frontier_is_emitted(self):
        emitter = self._emitter()
        track = make_track(0, first=0, last=59)
        bags = emitter.emit([], [track], processed_frames=60)
        assert all(b.frame_hi <= emitter.last_frontier for b in bags)
