"""Shared fixtures for the streaming-ingestion suite.

The batch (whole-clip) vision artifacts are the equivalence baseline for
every streamed variant, and they are the expensive part — compute them
once per session.
"""

import pytest

from repro.pipeline import PipelineConfig, PipelineRunner


@pytest.fixture(scope="session")
def tunnel_batch(small_tunnel):
    """Batch vision-pipeline artifacts for the tunnel fixture clip."""
    return PipelineRunner(PipelineConfig()).run(small_tunnel)


@pytest.fixture(scope="session")
def intersection_batch(small_intersection):
    """Batch vision-pipeline artifacts for the intersection clip."""
    return PipelineRunner(PipelineConfig()).run(small_intersection)
