"""SegmentedRunner: config gating, cached replay, kill-and-resume.

The resume contract mirrors the batch runner's: per-segment artifacts
are content addressed, a rerun replays the deepest contiguous cached
prefix and computes the rest, and a corrupt blob demotes the resume to
a full recompute (slower, never wrong).
"""

import pickle

import numpy as np
import pytest

from repro.errors import ConfigurationError, StorageError
from repro.obs import Telemetry, set_telemetry
from repro.pipeline import (
    DiskArtifactStore,
    MemoryArtifactStore,
    PipelineConfig,
    SegmentedRunner,
    StitchConfig,
)
from repro.sim import tunnel


@pytest.fixture(scope="module")
def clip():
    return tunnel(n_frames=300, seed=5, n_wall_crashes=1,
                  n_sudden_stops=1)


@pytest.fixture(scope="module")
def reference(clip):
    """Uncached streamed artifacts — the comparison target."""
    return SegmentedRunner(segment_frames=110).run(clip)


@pytest.fixture()
def fresh_telemetry():
    telemetry = Telemetry()
    previous = set_telemetry(telemetry)
    yield telemetry
    set_telemetry(previous)


def assert_matches_reference(artifacts, reference):
    assert [b.bag_id for b in artifacts.dataset.bags] == \
        [b.bag_id for b in reference.dataset.bags]
    np.testing.assert_array_equal(artifacts.dataset.instance_matrix(),
                                  reference.dataset.instance_matrix())
    assert [t.track_id for t in artifacts.tracks] == \
        [t.track_id for t in reference.tracks]


class TestConfigGating:
    def test_oracle_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="vision"):
            SegmentedRunner(PipelineConfig(mode="oracle"))

    def test_stitching_rejected(self):
        with pytest.raises(ConfigurationError, match="stitch"):
            SegmentedRunner(
                PipelineConfig(stitch=StitchConfig(enabled=True)))

    def test_segment_frames_validated(self):
        with pytest.raises(ConfigurationError, match="segment_frames"):
            SegmentedRunner(segment_frames=0)


class TestSegmentKeys:
    def test_every_key_covers_the_whole_clip(self, clip):
        # The background bootstrap samples the entire clip, so changing
        # any frame must invalidate every segment key — including the
        # first one.
        runner = SegmentedRunner(segment_frames=110)
        other = tunnel(n_frames=300, seed=6, n_wall_crashes=1,
                       n_sudden_stops=1)
        assert set(runner.segment_keys(clip)).isdisjoint(
            runner.segment_keys(other))

    def test_segment_length_is_part_of_the_key(self, clip):
        a = SegmentedRunner(segment_frames=110).segment_keys(clip)
        b = SegmentedRunner(segment_frames=150).segment_keys(clip)
        assert set(a).isdisjoint(b)


class TestResume:
    def test_full_cache_replays_without_compute(self, clip, reference):
        store = MemoryArtifactStore()
        SegmentedRunner(segment_frames=110, store=store).run(clip)
        warm = SegmentedRunner(segment_frames=110, store=store)
        emissions = list(warm.stream(clip))
        assert all(e.cached for e in emissions)
        assert warm.segments_executed == 0
        assert warm.segments_cached == len(emissions)
        assert_matches_reference(warm.artifacts, reference)

    def test_kill_mid_stream_resumes_after_cached_prefix(
            self, clip, reference, tmp_path):
        store = DiskArtifactStore(tmp_path / "cache")
        killed = SegmentedRunner(segment_frames=110, store=store)
        stream = killed.stream(clip)
        next(stream)
        stream.close()  # the "kill": only segment 0 is durable
        assert killed.artifacts is None

        resumed = SegmentedRunner(segment_frames=110, store=store)
        emissions = list(resumed.stream(clip))
        assert [e.cached for e in emissions] == [True, False, False]
        assert resumed.segments_executed == 2
        assert_matches_reference(resumed.artifacts, reference)

    def test_carry_survives_a_pickle_round_trip(self, clip, tmp_path):
        # DiskArtifactStore pickles every artifact, so the kill/resume
        # path above already exercises this end to end; this pins the
        # carry contract directly.
        store = MemoryArtifactStore()
        runner = SegmentedRunner(segment_frames=110, store=store)
        stream = runner.stream(clip)
        next(stream)
        stream.close()
        art = store.load(runner.segment_keys(clip)[0])
        clone = pickle.loads(pickle.dumps(art.carry))
        assert clone.emitter.n_emitted == art.carry.emitter.n_emitted
        assert len(clone.tracker.open_tracks) == \
            len(art.carry.tracker.open_tracks)

    def test_corrupt_cached_prefix_demotes_to_recompute(
            self, clip, reference, fresh_telemetry, monkeypatch):
        store = MemoryArtifactStore()
        SegmentedRunner(segment_frames=110, store=store).run(clip)

        def broken_load(key):
            raise StorageError(f"checksum mismatch for {key}")

        monkeypatch.setattr(store, "load", broken_load)
        demoted = SegmentedRunner(segment_frames=110, store=store)
        emissions = list(demoted.stream(clip))
        assert not any(e.cached for e in emissions)
        assert demoted.segments_executed == len(emissions)
        assert fresh_telemetry.counter(
            "pipeline.integrity_recoveries").value() == 1
        assert_matches_reference(demoted.artifacts, reference)

    def test_streaming_telemetry_recorded(self, clip, fresh_telemetry):
        runner = SegmentedRunner(segment_frames=110)
        runner.run(clip)
        t = fresh_telemetry
        assert t.counter("ingest.segments").value(
            outcome="computed") == 3
        assert t.counter("ingest.bags_emitted").value() == \
            len(runner.artifacts.dataset.bags)
        names = {s.name for s in t.spans}
        assert {"ingest.segment", "pipeline.stream"} <= names
