"""Cached vs uncached engine equivalence.

The GramCache is a pure reuse layer: for every kernel family and both
learners, ``use_cache=True`` must reproduce the ``use_cache=False``
scores to floating point tolerance across multiple feedback rounds —
including nu, rankings and explanations."""

import numpy as np
import pytest

from repro.core import MILRetrievalEngine
from tests.core.conftest import make_toy


def _relevant_ids(dataset, gt):
    return {b.bag_id for b in dataset.bags
            if gt.label_window(b.frame_lo, b.frame_hi)}


def _rounds(dataset, relevant, n_rounds=3, per_round=14):
    bag_ids = [b.bag_id for b in dataset.bags]
    return [
        {b: (b in relevant)
         for b in bag_ids[r * per_round:(r + 1) * per_round]}
        for r in range(n_rounds)
    ]


@pytest.mark.parametrize("kernel", ["rbf", "linear", "poly"])
@pytest.mark.parametrize("learner", ["ocsvm", "svdd"])
def test_cached_matches_uncached(kernel, learner):
    dataset, gt = make_toy(instances_per_bag=3, seed=2)
    relevant = _relevant_ids(dataset, gt)
    engines = [
        MILRetrievalEngine(dataset, kernel=kernel, learner=learner,
                           training_policy="all", use_cache=use_cache)
        for use_cache in (True, False)
    ]
    for batch in _rounds(dataset, relevant):
        for engine in engines:
            engine.feed(batch)
        cached, plain = engines
        assert cached.last_nu_ == pytest.approx(plain.last_nu_)
        sc, sp = cached._instance_scores(), plain._instance_scores()
        assert sc.keys() == sp.keys()
        assert max(abs(sc[i] - sp[i]) for i in sc) < 1e-8
        np.testing.assert_allclose(cached.bag_scores(), plain.bag_scores(),
                                   atol=1e-8)
        assert cached.rank() == plain.rank()


def test_cache_reuses_columns_across_rounds():
    dataset, gt = make_toy(instances_per_bag=2, seed=3)
    relevant = _relevant_ids(dataset, gt)
    engine = MILRetrievalEngine(dataset, training_policy="all")
    batches = _rounds(dataset, relevant, n_rounds=2, per_round=16)
    engine.feed(batches[0])
    misses_after_cold = engine._gram_cache.misses
    assert engine._gram_cache.hits == 0
    engine.feed(batches[1])
    # Warm round: only newly labelled instances cost kernel columns.
    assert engine._gram_cache.hits == misses_after_cold
    assert engine._gram_cache.misses > misses_after_cold


def test_gamma_scale_invalidates_per_round():
    """Data-dependent gamma moves as the training set grows; the cache
    must not reuse columns across differing gamma values."""
    dataset, gt = make_toy(instances_per_bag=2, seed=4)
    relevant = _relevant_ids(dataset, gt)
    engines = [
        MILRetrievalEngine(dataset, gamma="scale", training_policy="all",
                           use_cache=use_cache)
        for use_cache in (True, False)
    ]
    for batch in _rounds(dataset, relevant, n_rounds=2, per_round=16):
        for engine in engines:
            engine.feed(batch)
        cached, plain = engines
        sc, sp = cached._instance_scores(), plain._instance_scores()
        assert max(abs(sc[i] - sp[i]) for i in sc) < 1e-8


def test_warm_start_composes_with_cache():
    dataset, gt = make_toy(instances_per_bag=2, seed=5)
    relevant = _relevant_ids(dataset, gt)
    warm = MILRetrievalEngine(dataset, warm_start=True, use_cache=True,
                              training_policy="all")
    plain = MILRetrievalEngine(dataset, use_cache=False,
                               training_policy="all")
    for batch in _rounds(dataset, relevant):
        warm.feed(batch)
        plain.feed(batch)
    # Warm start reaches the same optimum within *solver* tolerance
    # (looser than the cache's exactness), so compare at that scale.
    sw, sp = warm._instance_scores(), plain._instance_scores()
    assert max(abs(sw[i] - sp[i]) for i in sw) < 1e-3
    # Near-ties can swap adjacent ranks at solver tolerance; the
    # retrieval outcome (the top-k set) must agree regardless.
    assert set(warm.top_k(10)) == set(plain.top_k(10))


def test_use_cache_false_has_no_cache():
    dataset, _ = make_toy()
    engine = MILRetrievalEngine(dataset, use_cache=False)
    assert engine._gram_cache is None
    engine.feed({0: True, 1: False})
    assert engine.is_trained
