"""Tests for the sharded corpus and two-stage pruned ranking.

The load-bearing property is monolith equivalence: with pruning
disabled, the sharded engine must reproduce the merged-dataset
``MILRetrievalEngine`` ranking round for round, including the bag-id
tie-break.  The rest pins the shard mechanics — lazy loading, spec
validation, feed atomicity, pruning semantics, Gram-cache reuse.
"""

import numpy as np
import pytest

from repro.core import MILRetrievalEngine, merge_datasets
from repro.core.bags import Bag, Instance, MILDataset
from repro.core.sharded import (
    CorpusShard,
    IVFNominator,
    ShardSpec,
    ShardedCorpus,
    ShardedRetrievalEngine,
)
from repro.errors import ConfigurationError


def _clip(clip_id, n_bags, seed, *, spike_every=3, empty_every=None,
          window=4, features=3, instances_per_bag=2):
    """Synthetic clip: every ``spike_every``-th bag carries an incident-
    like feature spike (so relevance is known by construction)."""
    rng = np.random.default_rng(seed)
    bags, iid = [], 0
    for b in range(n_bags):
        empty = empty_every is not None and b % empty_every == 1
        instances = []
        if not empty:
            for _ in range(instances_per_bag):
                matrix = rng.normal(scale=0.3, size=(window, features))
                if b % spike_every == 0:
                    matrix[window // 2] += 4.0
                instances.append(Instance(
                    instance_id=iid, bag_id=b, track_id=iid,
                    matrix=matrix))
                iid += 1
        bags.append(Bag(bag_id=b, clip_id=clip_id, frame_lo=b * 20,
                        frame_hi=b * 20 + 19, instances=tuple(instances)))
    return MILDataset(
        clip_id=clip_id, event_name="accident",
        feature_names=tuple(f"f{i}" for i in range(features)),
        window_size=window, sampling_rate=5, bags=bags)


def _specs(datasets):
    return [
        ShardSpec(clip_id=d.clip_id, n_bags=len(d.bags),
                  n_instances=d.n_instances, loader=(lambda d=d: d))
        for d in datasets
    ]


def _corpus(datasets, **kwargs):
    return ShardedCorpus(_specs(datasets), corpus_id="merged:test",
                         **kwargs)


def _spiked_global_ids(merged):
    """Global ids of bags with a spiked instance (relevance oracle)."""
    return {
        bag.bag_id for bag in merged.bags
        if any(np.abs(inst.matrix).max() > 2.0 for inst in bag.instances)
    }


@pytest.fixture()
def three_clips():
    return [
        _clip("a", 12, seed=1),
        _clip("b", 9, seed=2, empty_every=4),
        _clip("c", 15, seed=3, spike_every=5),
    ]


class TestShardedCorpus:
    def test_global_ids_match_merge(self, three_clips):
        corpus = _corpus(three_clips)
        merged = merge_datasets(three_clips, merged_id="merged:test")
        assert len(corpus) == len(merged)
        assert corpus.n_instances == merged.n_instances
        for bag_id in range(len(merged)):
            ours, theirs = corpus.bag_by_id(bag_id), merged.bag_by_id(bag_id)
            assert ours.clip_id == theirs.clip_id
            assert ours.frame_range == theirs.frame_range
            assert ([i.instance_id for i in ours.instances]
                    == [i.instance_id for i in theirs.instances])

    def test_shards_load_lazily(self, three_clips):
        corpus = _corpus(three_clips)
        assert corpus.loaded_clip_ids == []
        corpus.bag_by_id(0)  # first shard only
        assert corpus.loaded_clip_ids == ["a"]
        corpus.bag_by_id(len(corpus) - 1)
        assert set(corpus.loaded_clip_ids) == {"a", "c"}

    def test_unknown_bag_and_clip(self, three_clips):
        corpus = _corpus(three_clips)
        with pytest.raises(ConfigurationError, match="no bag with id"):
            corpus.bag_by_id(len(corpus))
        with pytest.raises(ConfigurationError, match="no shard for clip"):
            corpus.shard("nope")

    def test_spec_count_mismatch_fails_loudly(self, three_clips):
        spec = ShardSpec(clip_id="a", n_bags=99, n_instances=5,
                         loader=lambda: three_clips[0])
        with pytest.raises(ConfigurationError, match="spec declares"):
            CorpusShard(spec, 0, 0)

    def test_duplicate_and_empty_specs_rejected(self, three_clips):
        with pytest.raises(ConfigurationError, match="duplicate"):
            ShardedCorpus(_specs([three_clips[0], three_clips[0]]))
        with pytest.raises(ConfigurationError, match=">= 1"):
            ShardedCorpus([])


class TestMonolithEquivalence:
    def _run_protocol(self, datasets, *, rounds=4, top_k=10,
                      candidates_per_shard=None, **engine_kwargs):
        merged = merge_datasets(datasets, merged_id="merged:test")
        mono = MILRetrievalEngine(merged, **engine_kwargs)
        sharded = ShardedRetrievalEngine(
            _corpus(datasets), candidates_per_shard=candidates_per_shard,
            **engine_kwargs)
        relevant = _spiked_global_ids(merged)
        rankings = []
        for _ in range(rounds):
            mono_rank, sharded_rank = mono.rank(), sharded.rank()
            rankings.append((mono_rank, sharded_rank))
            labels = {b: b in relevant for b in mono_rank[:top_k]}
            mono.feed(labels)
            sharded.feed(labels)
        rankings.append((mono.rank(), sharded.rank()))
        return rankings

    def test_unpruned_ranking_matches_every_round(self, three_clips):
        for mono_rank, sharded_rank in self._run_protocol(three_clips):
            assert sharded_rank == mono_rank

    def test_m_at_corpus_size_matches(self, three_clips):
        total = sum(len(d.bags) for d in three_clips)
        for mono_rank, sharded_rank in self._run_protocol(
                three_clips, candidates_per_shard=total):
            assert sharded_rank == mono_rank

    def test_equivalence_with_svdd_and_topm_policy(self, three_clips):
        for mono_rank, sharded_rank in self._run_protocol(
                three_clips, rounds=2, learner="svdd",
                training_policy="top2"):
            assert sharded_rank == mono_rank

    def test_tie_break_by_bag_id(self):
        """Identical matrices everywhere -> every score ties -> ranking
        must fall back to ascending bag ids, exactly like the monolith."""
        constant = np.ones((3, 2))
        datasets = []
        iid = 0
        for clip_id in ("t1", "t2"):
            bags = []
            for b in range(5):
                inst = Instance(instance_id=iid, bag_id=b, track_id=iid,
                                matrix=constant.copy())
                iid += 1
                bags.append(Bag(bag_id=b, clip_id=clip_id, frame_lo=b * 10,
                                frame_hi=b * 10 + 9, instances=(inst,)))
            datasets.append(MILDataset(
                clip_id=clip_id, event_name="accident",
                feature_names=("f0", "f1"), window_size=3,
                sampling_rate=5, bags=bags))
        for mono_rank, sharded_rank in self._run_protocol(
                datasets, rounds=2, top_k=4):
            assert sharded_rank == mono_rank
            assert sharded_rank == sorted(sharded_rank)


class TestPrunedRanking:
    def test_rank_is_a_permutation(self, three_clips):
        engine = ShardedRetrievalEngine(_corpus(three_clips),
                                        candidates_per_shard=3)
        merged = merge_datasets(three_clips, merged_id="merged:test")
        ranking = engine.rank()
        assert sorted(ranking) == list(range(len(merged)))
        engine.feed({b: b in _spiked_global_ids(merged)
                     for b in ranking[:8]})
        ranking = engine.rank()
        assert sorted(ranking) == list(range(len(merged)))

    def test_pruned_top_k_matches_unpruned(self, three_clips):
        """The trained model is independent of M, and the spiked bags sit
        at the top of each shard's heuristic order, so a moderate M must
        reproduce the unpruned top-k."""
        merged = merge_datasets(three_clips, merged_id="merged:test")
        relevant = _spiked_global_ids(merged)
        full = ShardedRetrievalEngine(_corpus(three_clips))
        pruned = ShardedRetrievalEngine(_corpus(three_clips),
                                        candidates_per_shard=6)
        labels = {b: b in relevant for b in full.top_k(10)}
        full.feed(labels)
        pruned.feed(labels)
        assert pruned.top_k(5) == full.top_k(5)

    def test_pruned_bags_follow_all_candidates(self, three_clips):
        m = 2
        corpus = _corpus(three_clips)
        engine = ShardedRetrievalEngine(corpus, candidates_per_shard=m)
        ranking = engine.rank()
        n_candidates = sum(
            min(m, spec.n_bags) for spec in corpus.specs)
        candidate_ids = {
            int(shard.bag_offset + p)
            for shard in corpus.shards()
            for p in shard.candidate_positions(m)
        }
        assert set(ranking[:n_candidates]) == candidate_ids

    def test_empty_bags_rank_last(self):
        datasets = [_clip("e1", 8, seed=5, empty_every=2),
                    _clip("e2", 8, seed=6)]
        engine = ShardedRetrievalEngine(_corpus(datasets))
        merged = merge_datasets(datasets, merged_id="merged:test")
        empty = {b.bag_id for b in merged.bags if not b.instances}
        ranking = engine.rank()
        assert set(ranking[-len(empty):]) == empty


class TestNominators:
    def _fed_pair(self, datasets, *, m=6, n_cells=8, nprobe=8,
                  rounds=2, top_k=10):
        heur = ShardedRetrievalEngine(_corpus(datasets),
                                      candidates_per_shard=m)
        ivf = ShardedRetrievalEngine(
            _corpus(datasets), candidates_per_shard=m,
            nominator=IVFNominator(n_cells=n_cells, nprobe=nprobe))
        merged = merge_datasets(datasets, merged_id="merged:test")
        relevant = _spiked_global_ids(merged)
        for _ in range(rounds):
            labels = {b: b in relevant for b in heur.rank()[:top_k]}
            heur.feed(labels)
            ivf.feed(labels)
        return heur, ivf

    def test_exhaustive_probe_ranking_identical(self, three_clips):
        """nprobe == n_cells probes every cell — by definition a full
        scan — so the final ranking must equal the heuristic-nominated
        two-stage ranking, round for round."""
        heur, ivf = self._fed_pair(three_clips, n_cells=8, nprobe=8)
        assert ivf.rank() == heur.rank()

    def test_untrained_round_falls_back_to_heuristic(self, three_clips):
        heur = ShardedRetrievalEngine(_corpus(three_clips),
                                      candidates_per_shard=4)
        ivf = ShardedRetrievalEngine(
            _corpus(three_clips), candidates_per_shard=4,
            nominator=IVFNominator(n_cells=8, nprobe=1))
        assert ivf.rank() == heur.rank()

    def test_partial_probe_keeps_candidate_contract(self, three_clips):
        m = 4
        _, ivf = self._fed_pair(three_clips, m=m, n_cells=8, nprobe=2)
        ranking = ivf.rank()
        assert sorted(ranking) == list(
            range(sum(len(d.bags) for d in three_clips)))
        nominated = ivf._round_nominated
        assert nominated is not None
        for shard in ivf.corpus.shards():
            positions = nominated[shard.clip_id]
            assert len(positions) <= m
            assert len(np.unique(positions)) == len(positions)
        n_candidates = sum(len(p) for p in nominated.values())
        candidate_ids = {
            int(shard.bag_offset + p)
            for shard in ivf.corpus.shards()
            for p in nominated[shard.clip_id]
        }
        assert set(ranking[:n_candidates]) == candidate_ids

    def test_prebuilt_index_served_when_params_match(self, three_clips):
        from repro.index import build_index_for_dataset

        d = three_clips[0]
        prebuilt = build_index_for_dataset(d, n_cells=8, seed=0, iters=15)
        spec = ShardSpec(clip_id=d.clip_id, n_bags=len(d.bags),
                         n_instances=d.n_instances, loader=lambda: d,
                         index_loader=lambda: prebuilt)
        shard = CorpusShard(spec, 0, 0)
        assert shard.ivf_index(n_cells=8, seed=0, iters=15) is prebuilt
        # mismatched params must not serve the stale structure
        other = shard.ivf_index(n_cells=4, seed=0, iters=15)
        assert other is not prebuilt and other.n_cells <= 4

    def test_nominator_validation(self, three_clips):
        corpus = _corpus(three_clips)
        with pytest.raises(ConfigurationError, match="nominator"):
            ShardedRetrievalEngine(corpus, nominator="faiss")
        with pytest.raises(ConfigurationError, match="nominate"):
            ShardedRetrievalEngine(corpus, nominator=object())
        with pytest.raises(ConfigurationError, match="nprobe"):
            IVFNominator(nprobe=0)
        with pytest.raises(ConfigurationError, match="n_cells"):
            IVFNominator(n_cells=0)


class TestCandidateMemoization:
    def test_candidate_positions_cached_per_m(self, three_clips):
        shard = _corpus(three_clips).shard("a")
        first = shard.candidate_positions(4)
        assert shard.heuristic_order_computes == 1
        assert shard.candidate_positions(4) is first
        shard.candidate_positions(2)
        shard.candidate_positions(None)
        assert shard.heuristic_order_computes == 1

    def test_reload_invalidates_stale_cache(self):
        """A reloaded shard must not serve candidate prefixes computed
        from the previous load's data."""
        versions = {"current": _clip("r", 12, seed=1, spike_every=3)}
        spec = ShardSpec(clip_id="r", n_bags=12,
                         n_instances=versions["current"].n_instances,
                         loader=lambda: versions["current"])
        corpus = ShardedCorpus([spec], corpus_id="reload:test")
        stale = corpus.shard("r")
        before = stale.candidate_positions(3).copy()
        assert stale.metadata_version == 0

        versions["current"] = _clip("r", 12, seed=9, spike_every=4)
        fresh = corpus.shard("r")
        assert fresh is stale  # no reload yet -> cached shard

        fresh = corpus.reload("r")
        assert fresh is not stale
        assert fresh.metadata_version == 1
        after = fresh.candidate_positions(3)
        assert not np.array_equal(before, after)
        assert corpus.shard("r") is fresh

    def test_reload_before_load_starts_at_version_one(self, three_clips):
        corpus = _corpus(three_clips)
        shard = corpus.reload("b")
        assert shard.metadata_version == 1


class TestShardedEngineState:
    def test_feed_rejects_unknown_ids_atomically(self, three_clips):
        engine = ShardedRetrievalEngine(_corpus(three_clips))
        before = engine.rank()
        with pytest.raises(ConfigurationError, match="unknown bag ids"):
            engine.feed({0: True, 10_000: True})
        assert engine.labels == {}
        assert not engine.is_trained
        assert engine.rank() == before

    def test_gram_cache_reused_across_rounds(self, three_clips):
        corpus = _corpus(three_clips)
        engine = ShardedRetrievalEngine(corpus)
        merged = merge_datasets(three_clips, merged_id="merged:test")
        relevant = sorted(_spiked_global_ids(merged))
        engine.feed({relevant[0]: True})
        engine.rank()
        engine.feed({relevant[1]: True})
        engine.rank()
        hits = sum(s.gram_cache.hits for s in corpus.shards()
                   if s.gram_cache is not None)
        assert hits > 0

    def test_training_stats_match_monolith(self, three_clips):
        merged = merge_datasets(three_clips, merged_id="merged:test")
        mono = MILRetrievalEngine(merged)
        sharded = ShardedRetrievalEngine(_corpus(three_clips))
        labels = {b: b in _spiked_global_ids(merged)
                  for b in mono.top_k(10)}
        mono.feed(labels)
        sharded.feed(labels)
        assert sharded.last_nu_ == mono.last_nu_
        assert sharded.training_size_ == mono.training_size_

    def test_validation(self, three_clips):
        corpus = _corpus(three_clips)
        with pytest.raises(ConfigurationError,
                           match="candidates_per_shard"):
            ShardedRetrievalEngine(corpus, candidates_per_shard=0)
        with pytest.raises(ConfigurationError, match="learner"):
            ShardedRetrievalEngine(corpus, learner="forest")
        with pytest.raises(ConfigurationError, match="positive"):
            ShardedRetrievalEngine(corpus).top_k(0)
        empty = MILDataset(clip_id="x", event_name="accident",
                           feature_names=("f0",), window_size=1,
                           sampling_rate=5, bags=[])
        with pytest.raises(ConfigurationError, match="no bags"):
            ShardedRetrievalEngine(_corpus([empty]))

    def test_top_k_consumes_lazy_prefix(self, three_clips):
        engine = ShardedRetrievalEngine(_corpus(three_clips),
                                        candidates_per_shard=4)
        top = engine.top_k(3)
        assert len(top) == 3
        assert top == engine.rank()[:3]
