"""Tests for the instance-explanation API."""

import numpy as np
import pytest

from repro.core import MILRetrievalEngine, OracleUser, RetrievalSession
from repro.core.base import InstanceExplanation
from repro.errors import ConfigurationError
from tests.core.conftest import make_toy


@pytest.fixture()
def engine_with_feedback():
    ds, gt = make_toy(instances_per_bag=3, seed=4)
    engine = MILRetrievalEngine(ds)
    session = RetrievalSession(engine, OracleUser(gt), top_k=10)
    session.run(2)
    return ds, gt, engine


class TestExplain:
    def test_one_explanation_per_instance(self, engine_with_feedback):
        ds, _, engine = engine_with_feedback
        bag = ds.bags[0]
        explanations = engine.explain(bag.bag_id)
        assert len(explanations) == bag.n_instances
        assert {e.instance_id for e in explanations} \
            == {i.instance_id for i in bag.instances}

    def test_sorted_by_score(self, engine_with_feedback):
        _, _, engine = engine_with_feedback
        explanations = engine.explain(engine.top_k(1)[0])
        scores = [e.score for e in explanations]
        assert scores == sorted(scores, reverse=True)
        assert [e.rank for e in explanations] \
            == list(range(1, len(scores) + 1))

    def test_scores_match_instance_relevance(self, engine_with_feedback):
        _, _, engine = engine_with_feedback
        relevance = engine.instance_relevance()
        for e in engine.explain(engine.dataset.bags[0].bag_id):
            assert e.score == pytest.approx(relevance[e.instance_id])

    def test_works_before_feedback_too(self):
        ds, _ = make_toy(seed=1)
        engine = MILRetrievalEngine(ds)
        explanations = engine.explain(ds.bags[0].bag_id)
        assert explanations  # heuristic-based, still ordered
        assert explanations[0].feature_names \
            == ("inv_mdist", "vdiff", "theta")

    def test_unknown_bag_rejected(self, engine_with_feedback):
        _, _, engine = engine_with_feedback
        with pytest.raises(ConfigurationError):
            engine.explain(99999)

    def test_peak_feature(self):
        explanation = InstanceExplanation(
            rank=1, instance_id=0, track_id=0, score=0.5,
            feature_names=("a", "b"),
            matrix=np.array([[0.1, -2.0], [0.3, 0.4]]),
        )
        name, value = explanation.peak_feature()
        assert name == "b"
        assert value == pytest.approx(-2.0)

    def test_top_instance_is_eventful_in_event_bag(self):
        """In a relevant bag, the #1 explanation carries the spike."""
        ds, gt = make_toy(instances_per_bag=3, seed=6)
        engine = MILRetrievalEngine(ds)
        event_bag = next(b for b in ds.bags
                         if gt.label_window(b.frame_lo, b.frame_hi))
        top = engine.explain(event_bag.bag_id)[0]
        assert np.abs(top.matrix).max() > 0.5
