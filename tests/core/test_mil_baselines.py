"""Tests for the Diverse Density and EM-DD extension baselines."""

import numpy as np
import pytest

from repro.core import DiverseDensityEngine, EMDDEngine, OracleUser, RetrievalSession
from repro.core.diverse_density import (
    dd_instance_prob,
    dd_negative_log_likelihood,
)
from tests.core.conftest import make_toy


class TestDDProbability:
    def test_prob_one_at_target(self):
        target = np.array([1.0, -2.0])
        p = dd_instance_prob(target, target, np.ones(2))
        assert p[0] == pytest.approx(1.0)

    def test_prob_decays_with_distance(self):
        target = np.zeros(2)
        near = dd_instance_prob(np.array([[0.1, 0.0]]), target, np.ones(2))
        far = dd_instance_prob(np.array([[2.0, 0.0]]), target, np.ones(2))
        assert near[0] > far[0]

    def test_scales_modulate_sensitivity(self):
        target = np.zeros(2)
        x = np.array([[1.0, 0.0]])
        tight = dd_instance_prob(x, target, np.array([3.0, 1.0]))
        loose = dd_instance_prob(x, target, np.array([0.3, 1.0]))
        assert tight[0] < loose[0]


class TestDDObjective:
    def test_nll_lower_when_target_on_positive_instances(self):
        rng = np.random.default_rng(0)
        concept = np.array([2.0, 2.0])
        positives = [concept + rng.normal(0, 0.1, size=(3, 2))
                     for _ in range(4)]
        negatives = [rng.normal(-2.0, 0.3, size=(3, 2)) for _ in range(4)]
        good = np.concatenate([concept, np.ones(2)])
        bad = np.concatenate([-concept, np.ones(2)])
        assert (dd_negative_log_likelihood(good, positives, negatives)
                < dd_negative_log_likelihood(bad, positives, negatives))

    def test_noisy_or_rewards_any_hit(self):
        concept = np.zeros(2)
        bag_with_hit = [np.array([[0.0, 0.0], [5.0, 5.0]])]
        bag_without = [np.array([[5.0, 5.0], [6.0, 6.0]])]
        params = np.concatenate([concept, np.ones(2)])
        assert (dd_negative_log_likelihood(params, bag_with_hit, [])
                < dd_negative_log_likelihood(params, bag_without, []))


class TestEngines:
    @pytest.mark.parametrize("engine_cls", [DiverseDensityEngine, EMDDEngine])
    def test_improves_over_initial_on_toy(self, engine_cls):
        ds, gt = make_toy(n_event=6, n_brake=6, n_normal=12, seed=2)
        engine = engine_cls(ds, max_starts=4)
        session = RetrievalSession(engine, OracleUser(gt), top_k=8)
        accs = [r.accuracy() for r in session.run(3)]
        assert accs[-1] >= accs[0]

    @pytest.mark.parametrize("engine_cls", [DiverseDensityEngine, EMDDEngine])
    def test_uses_negative_bags(self, engine_cls, toy):
        ds, gt = toy
        engine = engine_cls(ds, max_starts=3)
        labels = {}
        for bag in ds.bags[:12]:
            labels[bag.bag_id] = gt.label_window(bag.frame_lo, bag.frame_hi)
        engine.feed(labels)
        assert engine.hypothesis_ is not None
        target, scales = engine.hypothesis_
        assert target.shape == (9,)
        assert scales.shape == (9,)
        assert np.isfinite(engine.nll_)

    @pytest.mark.parametrize("engine_cls", [DiverseDensityEngine, EMDDEngine])
    def test_heuristic_until_relevant_feedback(self, engine_cls, toy):
        ds, _ = toy
        engine = engine_cls(ds)
        before = engine.rank()
        engine.feed({before[0]: False})
        assert engine.rank() == before

    def test_dd_finds_event_concept(self):
        """The learned target sits nearer the event cluster than normal."""
        ds, gt = make_toy(n_event=8, n_brake=0, n_normal=16, seed=4)
        engine = DiverseDensityEngine(ds, max_starts=4)
        labels = {b.bag_id: gt.label_window(b.frame_lo, b.frame_hi)
                  for b in ds.bags}
        engine.feed(labels)
        scores = engine.bag_scores()
        rel = np.array([gt.label_window(b.frame_lo, b.frame_hi)
                        for b in ds.bags])
        assert scores[rel].mean() > scores[~rel].mean()

    def test_validation(self, toy):
        ds, _ = toy
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            DiverseDensityEngine(ds, max_starts=0)
