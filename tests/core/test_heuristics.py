"""Tests for the initial heuristic ranking (paper Section 5.3)."""

import numpy as np
import pytest

from repro.core.heuristics import (
    heuristic_scores,
    instance_feature_matrices,
    instance_point_scores,
    normalize_features,
)
from tests.core.conftest import make_toy


class TestInstancePointScores:
    def test_square_sum(self):
        matrix = np.array([[1.0, 2.0], [0.0, 3.0]])
        scores = instance_point_scores(matrix)
        assert scores == pytest.approx([5.0, 9.0])

    def test_sign_blind(self):
        """The square sum cannot tell braking from accelerating."""
        up = instance_point_scores(np.array([[0.0, 2.0]]))
        down = instance_point_scores(np.array([[0.0, -2.0]]))
        assert up == pytest.approx(down)

    def test_weighted(self):
        matrix = np.array([[1.0, 2.0]])
        scores = instance_point_scores(matrix, weights=np.array([2.0, 0.5]))
        assert scores == pytest.approx([2.0 + 2.0])


class TestHeuristicScores:
    def test_max_over_points_and_instances(self, toy):
        ds, _ = toy
        bag_scores, inst_scores = heuristic_scores(ds)
        assert len(bag_scores) == len(ds.bags)
        for b, bag in enumerate(ds.bags):
            expected = max(inst_scores[i.instance_id] for i in bag.instances)
            assert bag_scores[b] == pytest.approx(expected)

    def test_event_bags_outrank_normal_bags(self, toy):
        ds, gt = toy
        bag_scores, _ = heuristic_scores(ds)
        rel = np.array([gt.label_window(b.frame_lo, b.frame_hi)
                        for b in ds.bags])
        assert bag_scores[rel].mean() > bag_scores[~rel].mean()

    def test_brake_confuses_the_heuristic(self):
        """A V-shaped brake scores ~ an event: that is the point of RF."""
        ds, gt = make_toy(n_event=4, n_brake=4, n_normal=0, seed=3)
        bag_scores, _ = heuristic_scores(ds)
        rel = np.array([gt.label_window(b.frame_lo, b.frame_hi)
                        for b in ds.bags])
        # Means within ~35% of each other: genuinely confusable.
        ratio = bag_scores[rel].mean() / bag_scores[~rel].mean()
        assert 0.6 < ratio < 1.6

    def test_empty_bag_scores_minus_inf(self):
        from repro.core.bags import Bag, MILDataset

        ds, _ = make_toy(n_event=1, n_brake=0, n_normal=1)
        ds.bags.append(Bag(bag_id=99, clip_id="toy", frame_lo=900,
                           frame_hi=914, instances=()))
        bag_scores, _ = heuristic_scores(ds)
        assert bag_scores[-1] == -np.inf

    def test_matrices_with_normalize_rejected(self, toy):
        """Regression: normalize=True used to be silently ignored when
        explicit matrices were passed — callers thought they ranked
        normalized features when they didn't."""
        from repro.errors import ConfigurationError

        ds, _ = toy
        matrices = instance_feature_matrices(ds)
        with pytest.raises(ConfigurationError, match="not both"):
            heuristic_scores(ds, matrices=matrices, normalize=True)
        # Each flag on its own stays valid.
        heuristic_scores(ds, matrices=matrices)
        heuristic_scores(ds, normalize=True)


class TestFeatureMatrices:
    def test_raw_by_default(self, toy):
        ds, _ = toy
        matrices = instance_feature_matrices(ds)
        inst = ds.all_instances()[0]
        assert np.array_equal(matrices[inst.instance_id], inst.matrix)

    def test_normalized_in_unit_range(self, toy):
        ds, _ = toy
        matrices, scaler = normalize_features(ds)
        stacked = np.vstack(list(matrices.values()))
        assert stacked.min() >= 0.0
        assert stacked.max() <= 1.0

    def test_empty_dataset(self):
        from repro.core.bags import MILDataset

        ds = MILDataset(clip_id="x", event_name="accident",
                        feature_names=("a",), window_size=3,
                        sampling_rate=5)
        matrices, _ = normalize_features(ds)
        assert matrices == {}
