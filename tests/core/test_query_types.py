"""Tests for query-by-example / sketch / combined queries (Section 7)."""

import numpy as np
import pytest

from repro.core import OracleUser, RetrievalSession
from repro.core.query_types import (
    CombinedQueryEngine,
    ExampleQueryEngine,
    sketch_to_example,
    similarity_scores,
)
from repro.errors import ConfigurationError
from repro.events import AccidentModel, SamplingConfig
from tests.core.conftest import make_toy


def _event_example(ds, gt):
    """Pick a true event instance's vector as the example."""
    for bag in ds.bags:
        if gt.label_window(bag.frame_lo, bag.frame_hi):
            return bag.instances[0].vector
    raise AssertionError("no event bag in toy dataset")


class TestSimilarityScores:
    def test_example_itself_scores_highest(self, toy):
        ds, gt = toy
        example = _event_example(ds, gt)
        _, inst_scores = similarity_scores(ds, [example])
        best = max(inst_scores, key=inst_scores.get)
        best_vec = next(i.vector for i in ds.all_instances()
                        if i.instance_id == best)
        assert np.allclose(best_vec, example)

    def test_bag_score_is_max_of_instances(self, toy):
        ds, gt = toy
        example = _event_example(ds, gt)
        bag_scores, inst_scores = similarity_scores(ds, [example])
        for b, bag in enumerate(ds.bags):
            expected = max(inst_scores[i.instance_id]
                           for i in bag.instances)
            assert bag_scores[b] == pytest.approx(expected)

    def test_dimension_mismatch_rejected(self, toy):
        ds, _ = toy
        with pytest.raises(ConfigurationError, match="features"):
            similarity_scores(ds, [np.zeros(4)])


class TestExampleQueryEngine:
    def test_initial_round_finds_similar_events(self, toy):
        ds, gt = toy
        example = _event_example(ds, gt)
        engine = ExampleQueryEngine(ds, [example])
        top = engine.top_k(8)
        relevant = [b for b in top
                    if gt.label_window(ds.bag_by_id(b).frame_lo,
                                       ds.bag_by_id(b).frame_hi)]
        # The example-driven initial round is strongly enriched.
        assert len(relevant) >= 6

    def test_example_beats_heuristic_initial(self):
        from repro.core import MILRetrievalEngine

        ds, gt = make_toy(n_event=8, n_brake=12, n_normal=20, seed=3)
        example = _event_example(ds, gt)
        rel = {b.bag_id for b in ds.bags
               if gt.label_window(b.frame_lo, b.frame_hi)}

        def acc(engine):
            top = engine.top_k(10)
            return sum(b in rel for b in top) / 10

        assert acc(ExampleQueryEngine(ds, [example])) \
            >= acc(MILRetrievalEngine(ds))

    def test_feedback_still_works(self, toy):
        ds, gt = toy
        example = _event_example(ds, gt)
        engine = ExampleQueryEngine(ds, [example])
        session = RetrievalSession(engine, OracleUser(gt), top_k=10)
        accs = [r.accuracy() for r in session.run(3)]
        assert accs[-1] >= 0.5


class TestSketchToExample:
    def _sudden_stop_sketch(self, n=60, stop_at=30):
        xs = np.cumsum([3.0 if i < stop_at else 0.0 for i in range(n)])
        return np.column_stack([xs, np.full(n, 50.0)])

    def test_sketch_vector_shape(self):
        vec = sketch_to_example(self._sudden_stop_sketch(), AccidentModel())
        assert vec.shape == (9,)  # 3 checkpoints x 3 features

    def test_sketch_captures_the_stop(self):
        vec = sketch_to_example(self._sudden_stop_sketch(), AccidentModel())
        matrix = vec.reshape(3, 3)
        assert matrix[:, 1].min() < -0.5  # a deceleration spike

    def test_straight_sketch_is_quiet(self):
        points = np.column_stack([3.0 * np.arange(60), np.full(60, 50.0)])
        vec = sketch_to_example(points, AccidentModel())
        assert np.abs(vec).max() < 0.3

    def test_short_sketch_rejected(self):
        with pytest.raises(ConfigurationError, match="too short"):
            sketch_to_example(np.zeros((10, 2)), AccidentModel())

    def test_sketch_query_end_to_end(self, toy):
        """Sketch a sudden stop, retrieve event bags."""
        ds, gt = toy
        vec = sketch_to_example(self._sudden_stop_sketch(),
                                AccidentModel(),
                                config=SamplingConfig(smooth_window=1))
        engine = ExampleQueryEngine(ds, [vec], use_scaler=False)
        session = RetrievalSession(engine, OracleUser(gt), top_k=10)
        accs = [r.accuracy() for r in session.run(3)]
        assert max(accs) >= 0.5


class TestCombinedQueryEngine:
    def test_combination_runs(self, toy):
        ds, gt = toy
        example = _event_example(ds, gt)
        engine = CombinedQueryEngine(
            ds, [("heuristic", None, 1.0), ("examples", [example], 2.0)])
        assert len(engine.rank()) == len(ds.bags)

    def test_zero_weight_component_ignored(self, toy):
        ds, gt = toy
        example = _event_example(ds, gt)
        pure = ExampleQueryEngine(ds, [example])
        combined = CombinedQueryEngine(
            ds, [("heuristic", None, 0.0), ("examples", [example], 1.0)])
        assert combined.rank() == pure.rank()

    def test_validation(self, toy):
        ds, _ = toy
        with pytest.raises(ConfigurationError):
            CombinedQueryEngine(ds, [])
        with pytest.raises(ConfigurationError):
            CombinedQueryEngine(ds, [("telepathy", None, 1.0)])
        with pytest.raises(ConfigurationError):
            CombinedQueryEngine(ds, [("heuristic", None, -1.0)])
        with pytest.raises(ConfigurationError):
            CombinedQueryEngine(ds, [("heuristic", None, 0.0)])
