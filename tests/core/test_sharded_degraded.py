"""Shard-as-failure-domain: quarantine, degraded coverage, recovery.

The contract under test (ISSUE 8): a shard whose storage fails is
quarantined on a deterministic backoff-and-reprobe schedule; under
``failure_policy="degraded"`` the round proceeds over the healthy
shards with an *honest* :class:`CoverageReport`, the served bags score
exactly as in the full ranking, and the shard rejoins automatically
once its loader heals.  Under ``"strict"`` (the default, and therefore
the zero-fault behavior) the typed error propagates.
"""

import pytest

from repro.core.sharded import (
    CoverageReport,
    ShardSpec,
    ShardedCorpus,
    ShardedRetrievalEngine,
)
from repro.errors import (
    ConfigurationError,
    ShardUnavailableError,
    StorageError,
)
from repro.obs import Telemetry, get_telemetry, set_telemetry
from repro.reliability import RetryPolicy

from tests.core.test_sharded import _clip


@pytest.fixture(autouse=True)
def fresh_telemetry():
    """Isolate the process-wide registry: counters asserted per-test."""
    previous = set_telemetry(Telemetry())
    yield
    set_telemetry(previous)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class FlakyLoader:
    """Loader that fails with a configurable storage error on demand."""

    def __init__(self, dataset) -> None:
        self.dataset = dataset
        self.fail = False
        self.error: Exception = StorageError("disk on fire")
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.fail:
            raise self.error
        return self.dataset


def _flaky_corpus(datasets, **kwargs):
    loaders = {d.clip_id: FlakyLoader(d) for d in datasets}
    specs = [
        ShardSpec(clip_id=d.clip_id, n_bags=len(d.bags),
                  n_instances=d.n_instances, loader=loaders[d.clip_id])
        for d in datasets
    ]
    kwargs.setdefault("retry_policy",
                      RetryPolicy(base_delay=1.0, backoff=2.0,
                                  max_delay=60.0, jitter=0.0))
    clock = kwargs.setdefault("clock", FakeClock())
    return ShardedCorpus(specs, corpus_id="merged:test",
                         **kwargs), loaders, clock


@pytest.fixture()
def clips():
    return [
        _clip("a", 10, seed=1),
        _clip("b", 8, seed=2),
        _clip("c", 12, seed=3, spike_every=4),
    ]


def _bag_range(corpus, clip_id):
    """Global bag-id set of one clip (from the catalog offsets)."""
    lo = 0
    for spec in corpus.specs:
        if spec.clip_id == clip_id:
            return set(range(lo, lo + spec.n_bags))
        lo += spec.n_bags
    raise AssertionError(clip_id)


class TestQuarantine:
    def test_strict_load_failure_raises_typed_error(self, clips):
        corpus, loaders, _ = _flaky_corpus(clips)
        loaders["b"].fail = True
        engine = ShardedRetrievalEngine(corpus)  # strict default
        with pytest.raises(ShardUnavailableError) as err:
            engine.rank()
        assert err.value.clip_id == "b"
        assert "disk on fire" in str(err.value)

    def test_quarantine_fast_fails_without_reprobing(self, clips):
        corpus, loaders, clock = _flaky_corpus(clips)
        loaders["b"].fail = True
        with pytest.raises(ShardUnavailableError):
            corpus.shard("b")
        calls = loaders["b"].calls
        # Within the backoff window the loader must not be touched.
        with pytest.raises(ShardUnavailableError):
            corpus.shard("b")
        assert loaders["b"].calls == calls
        assert corpus.quarantined_clip_ids == ["b"]
        # Once due, the loader is reprobed; still failing extends the
        # quarantine with a grown backoff.
        clock.advance(1.0)
        with pytest.raises(ShardUnavailableError) as err:
            corpus.shard("b")
        assert loaders["b"].calls == calls + 1
        assert err.value.failures == 2
        assert err.value.retry_in_s == pytest.approx(2.0)  # 1.0 * 2**1

    def test_reprobe_success_rejoins_and_resets(self, clips):
        corpus, loaders, clock = _flaky_corpus(clips)
        loaders["b"].fail = True
        with pytest.raises(ShardUnavailableError):
            corpus.shard("b")
        mutations = corpus.mutation_count
        loaders["b"].fail = False
        clock.advance(1.0)
        shard = corpus.shard("b")
        assert shard.clip_id == "b"
        assert corpus.quarantined_clip_ids == []
        assert corpus.shard_outage("b") is None
        # Recovery bumps the mutation counter so engines refit.
        assert corpus.mutation_count == mutations + 1
        obs = get_telemetry()
        assert obs.counter("sharded.shard_recoveries").total() == 1
        assert obs.gauge("sharded.quarantined_shards").value() == 0

    def test_refresh_failure_quarantines_and_keeps_old_spec(self, clips):
        corpus, loaders, _ = _flaky_corpus(clips)
        engine = ShardedRetrievalEngine(corpus, failure_policy="degraded")
        engine.rank()  # load everything
        old_bags = len(corpus)
        loaders["b"].fail = True
        with pytest.raises(ShardUnavailableError):
            corpus.refresh("b", n_bags=9, n_instances=100)
        # The catalog counts were NOT adopted: ids stay stable and the
        # caller retries the refresh after the shard heals.
        assert len(corpus) == old_bags
        assert corpus.quarantined_clip_ids == ["b"]
        assert "b" not in corpus.loaded_clip_ids


class TestDegradedRounds:
    def _fed(self, corpus, labels=None, **kwargs):
        engine = ShardedRetrievalEngine(corpus, **kwargs)
        if labels:
            engine.feed(labels)
        return engine

    def test_degraded_round_serves_remaining_shards(self, clips):
        corpus, loaders, _ = _flaky_corpus(clips)
        loaders["b"].fail = True
        engine = self._fed(corpus, failure_policy="degraded")
        ranking = engine.rank()
        missing = _bag_range(corpus, "b")
        assert not missing & set(ranking)
        assert len(ranking) == len(corpus) - len(missing)
        cov = engine.last_coverage
        assert isinstance(cov, CoverageReport)
        assert cov.degraded
        assert cov.shards_served == ("a", "c")
        assert cov.missing_clip_ids == ("b",)
        assert cov.bags_missing == len(missing)
        assert cov.bags_total == len(corpus)
        assert "DEGRADED" in cov.summary()
        assert get_telemetry().counter(
            "sharded.degraded_rounds").total() >= 1

    def test_zero_faults_matches_strict_engine_exactly(self, clips):
        corpus_a, _, _ = _flaky_corpus(clips)
        corpus_b, _, _ = _flaky_corpus(clips)
        strict = self._fed(corpus_a, failure_policy="strict")
        degraded = self._fed(corpus_b, failure_policy="degraded")
        labels = {0: True, 4: False, 20: True}
        for eng in (strict, degraded):
            eng.feed(labels)
        assert strict.rank() == degraded.rank()
        assert degraded.last_coverage is not None
        assert not degraded.last_coverage.degraded
        assert degraded.last_coverage.shards_served == ("a", "b", "c")

    def test_midsession_failure_serves_exact_restriction(self, clips):
        """A shard dying *after* training must not perturb the served
        shards' scores: the degraded ranking is the full ranking with
        the dead shard's bags deleted."""
        corpus_full, _, _ = _flaky_corpus(clips)
        reference = self._fed(corpus_full, labels={0: True, 12: True})
        full_rank = reference.rank()

        corpus, loaders, _ = _flaky_corpus(clips)
        engine = self._fed(corpus, labels={0: True, 12: True},
                           failure_policy="degraded")
        assert engine.rank() == full_rank
        # Kill clip "c" mid-session via a failed refresh (the streaming
        # path's failure mode: catalog says more bags, loader dies).
        loaders["c"].fail = True
        with pytest.raises(ShardUnavailableError):
            corpus.refresh("c", n_bags=13, n_instances=999)
        missing = _bag_range(corpus, "c")
        degraded_rank = engine.rank()
        assert degraded_rank == [b for b in full_rank if b not in missing]
        assert engine.last_coverage.degraded
        assert engine.last_coverage.missing_clip_ids == ("c",)

    def test_recovery_rejoins_within_reprobe_schedule(self, clips):
        corpus, loaders, clock = _flaky_corpus(clips)
        loaders["b"].fail = True
        engine = self._fed(corpus, failure_policy="degraded")
        engine.feed({0: True, 20: True})
        engine.rank()
        assert engine.last_coverage.degraded
        # Fault clears; before the reprobe deadline the shard stays out.
        loaders["b"].fail = False
        assert engine.rank() and engine.last_coverage.degraded
        # At the deadline the next round reprobes, recovers, retrains.
        clock.advance(1.0)
        ranking = engine.rank()
        assert not engine.last_coverage.degraded
        assert set(ranking) == set(range(len(corpus)))
        # Healed state matches a never-failed engine fed the same labels.
        corpus2, _, _ = _flaky_corpus(clips)
        fresh = self._fed(corpus2, labels={0: True, 20: True})
        assert ranking == fresh.rank()

    def test_relevant_bag_on_dead_shard_skipped_from_training(self, clips):
        corpus, loaders, _ = _flaky_corpus(clips)
        engine = self._fed(corpus, failure_policy="degraded")
        b_bags = sorted(_bag_range(corpus, "b"))
        engine.feed({0: True, b_bags[0]: True})
        assert engine.is_trained
        loaders["b"].fail = True
        with pytest.raises(ShardUnavailableError):
            corpus.refresh("b", n_bags=9, n_instances=999)
        engine.feed({4: False})  # retrain with shard "b" dead
        assert engine.is_trained  # bag 0 still trains the model
        engine.rank()
        assert engine.last_coverage.training_bags_skipped == 1

    def test_degraded_all_shards_dead_raises(self, clips):
        corpus, loaders, _ = _flaky_corpus(clips)
        for loader in loaders.values():
            loader.fail = True
        engine = self._fed(corpus, failure_policy="degraded")
        # No shard to serve: rank yields nothing rather than lying.
        assert engine.rank() == []
        cov = engine.last_coverage
        assert cov.degraded and not cov.shards_served
        assert cov.bags_missing == len(corpus)

    def test_failure_policy_validated(self, clips):
        corpus, _, _ = _flaky_corpus(clips)
        with pytest.raises(ConfigurationError):
            ShardedRetrievalEngine(corpus, failure_policy="lenient")
