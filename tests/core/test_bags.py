"""Tests for MIL bag/instance structures (paper Eq. 3-4 semantics)."""

import numpy as np
import pytest

from repro.core.bags import Bag, Instance, MILDataset
from repro.errors import ConfigurationError


def _inst(iid=0, bag=0, matrix=None):
    return Instance(instance_id=iid, bag_id=bag, track_id=iid,
                    matrix=matrix if matrix is not None else np.ones((3, 2)))


class TestInstance:
    def test_vector_is_flattened_matrix(self):
        matrix = np.arange(6.0).reshape(3, 2)
        inst = _inst(matrix=matrix)
        assert np.array_equal(inst.vector, np.arange(6.0))
        assert inst.window_size == 3
        assert inst.n_features == 2

    def test_rejects_empty_matrix(self):
        with pytest.raises(ConfigurationError):
            _inst(matrix=np.empty((0, 3)))

    def test_rejects_1d_matrix(self):
        with pytest.raises(ConfigurationError):
            _inst(matrix=np.ones(5))


class TestBag:
    def test_instances_must_carry_bag_id(self):
        with pytest.raises(ConfigurationError, match="carries bag_id"):
            Bag(bag_id=1, clip_id="c", frame_lo=0, frame_hi=10,
                instances=(_inst(bag=2),))

    def test_rejects_inverted_frames(self):
        with pytest.raises(ConfigurationError):
            Bag(bag_id=0, clip_id="c", frame_lo=10, frame_hi=5,
                instances=())

    def test_instance_matrix_stacks_vectors(self):
        bag = Bag(bag_id=0, clip_id="c", frame_lo=0, frame_hi=10,
                  instances=(_inst(0), _inst(1)))
        assert bag.instance_matrix().shape == (2, 6)
        assert bag.n_instances == 2

    def test_empty_bag(self):
        bag = Bag(bag_id=0, clip_id="c", frame_lo=0, frame_hi=10,
                  instances=())
        assert bag.instance_matrix().size == 0


class TestMILDataset:
    def _dataset(self):
        bags = [
            Bag(bag_id=0, clip_id="c", frame_lo=0, frame_hi=14,
                instances=(_inst(0, 0),)),
            Bag(bag_id=1, clip_id="c", frame_lo=15, frame_hi=29,
                instances=(_inst(1, 1), _inst(2, 1))),
            Bag(bag_id=2, clip_id="c", frame_lo=30, frame_hi=44,
                instances=()),
        ]
        return MILDataset(clip_id="c", event_name="accident",
                          feature_names=("a", "b"), window_size=3,
                          sampling_rate=5, bags=bags)

    def test_counts(self):
        ds = self._dataset()
        assert len(ds) == 3
        assert ds.n_instances == 3
        assert len(ds.non_empty_bags()) == 2

    def test_bag_by_id(self):
        ds = self._dataset()
        assert ds.bag_by_id(1).n_instances == 2
        with pytest.raises(ConfigurationError):
            ds.bag_by_id(99)

    def test_instance_matrix_shape(self):
        ds = self._dataset()
        assert ds.instance_matrix().shape == (3, 6)

    def test_frame_windows(self):
        ds = self._dataset()
        assert ds.frame_windows() == [(0, 14), (15, 29), (30, 44)]

    def test_iteration(self):
        ds = self._dataset()
        assert [b.bag_id for b in ds] == [0, 1, 2]
