"""Tests for active (uncertainty-sampling) relevance feedback."""

import pytest

from repro.core import MILRetrievalEngine, OracleUser, RetrievalSession
from repro.core.active import ActiveRetrievalSession
from repro.errors import ConfigurationError
from tests.core.conftest import make_toy


class TestActiveRetrievalSession:
    def _sessions(self, explore_k=3, top_k=10, seed=0):
        ds, gt = make_toy(n_event=8, n_brake=10, n_normal=20, seed=seed)
        passive = RetrievalSession(MILRetrievalEngine(ds), OracleUser(gt),
                                   top_k=top_k)
        active = ActiveRetrievalSession(MILRetrievalEngine(ds),
                                        OracleUser(gt), top_k=top_k,
                                        explore_k=explore_k)
        return ds, gt, passive, active

    def test_round_still_returns_top_k_bags(self):
        _, _, _, active = self._sessions()
        result = active.run_round()
        assert len(result.returned_bag_ids) == 10
        assert len(set(result.returned_bag_ids)) == 10

    def test_explores_unlabeled_bags(self):
        _, _, _, active = self._sessions()
        first = set(active.run_round().returned_bag_ids)
        second = set(active.run_round().returned_bag_ids)
        # At least the exploration slots look at bags outside round 1.
        assert second - first

    def test_explore_zero_equals_passive(self):
        ds, gt, _, _ = self._sessions()
        passive = RetrievalSession(MILRetrievalEngine(ds), OracleUser(gt),
                                   top_k=10)
        active0 = ActiveRetrievalSession(MILRetrievalEngine(ds),
                                         OracleUser(gt), top_k=10,
                                         explore_k=0)
        passive.run(3)
        active0.run(3)
        assert passive.accuracies() == active0.accuracies()

    def test_finds_at_least_as_many_relevant(self):
        ds, gt, passive, active = self._sessions()
        passive.run(4)
        active.run(4)
        def found(session):
            return sum(1 for v in session.engine.labels.values() if v)
        assert found(active) >= found(passive) - 1

    def test_ranking_accuracy_helper(self):
        ds, gt, _, active = self._sessions()
        rel = {b.bag_id for b in ds.bags
               if gt.label_window(b.frame_lo, b.frame_hi)}
        active.run(3)
        acc = active.ranking_accuracy(rel)
        assert 0.0 <= acc <= 1.0

    def test_validation(self):
        ds, gt, _, _ = self._sessions()
        with pytest.raises(ConfigurationError):
            ActiveRetrievalSession(MILRetrievalEngine(ds), OracleUser(gt),
                                   top_k=10, explore_k=10)
        with pytest.raises(ConfigurationError):
            ActiveRetrievalSession(MILRetrievalEngine(ds), OracleUser(gt),
                                   top_k=10, explore_k=-1)

    def test_exploration_exhausts_gracefully(self):
        """When every bag is labeled, rounds still return top-k."""
        ds, gt, _, _ = self._sessions()
        active = ActiveRetrievalSession(MILRetrievalEngine(ds),
                                        OracleUser(gt),
                                        top_k=len(ds.bags), explore_k=2)
        active.run(2)  # first round labels everything
        result = active.rounds[-1]
        assert len(result.returned_bag_ids) == len(ds.bags)
