"""Tests for the weighted relevance-feedback baseline (Section 6.2)."""

import numpy as np
import pytest

from repro.core import OracleUser, RetrievalSession, WeightedRFEngine
from repro.core.weighted_rf import normalize_weights
from repro.errors import ConfigurationError
from tests.core.conftest import make_toy


class TestNormalizeWeights:
    def test_percentage_sums_to_one(self):
        w = normalize_weights(np.array([1.0, 3.0, 6.0]), "percentage")
        assert w.sum() == pytest.approx(1.0)
        assert w[2] > w[1] > w[0]

    def test_linear_maps_to_unit_interval(self):
        w = normalize_weights(np.array([2.0, 4.0, 6.0]), "linear")
        assert w == pytest.approx([0.0, 0.5, 1.0])

    def test_linear_zero_weight_kills_feature(self):
        """The paper's reported drawback of linear normalization."""
        w = normalize_weights(np.array([2.0, 4.0, 6.0]), "linear")
        assert w[0] == 0.0

    def test_none_passthrough(self):
        raw = np.array([2.0, 4.0])
        assert np.array_equal(normalize_weights(raw, "none"), raw)

    def test_degenerate_equal_weights(self):
        w = normalize_weights(np.array([3.0, 3.0]), "linear")
        assert np.array_equal(w, [1.0, 1.0])

    def test_unknown_method(self):
        with pytest.raises(ConfigurationError):
            normalize_weights(np.array([1.0]), "softmax")


class TestWeightedRFEngine:
    def test_initial_weights_are_ones(self, toy):
        ds, _ = toy
        engine = WeightedRFEngine(ds)
        assert np.array_equal(engine.weights_, np.ones(3))

    def test_initial_ranking_equals_mil_initial(self, toy):
        """Both methods share the Initial round (paper Section 6.2)."""
        from repro.core import MILRetrievalEngine

        ds, _ = toy
        assert WeightedRFEngine(ds).rank() == MILRetrievalEngine(ds).rank()

    def test_weights_update_after_feedback(self, toy):
        ds, gt = toy
        engine = WeightedRFEngine(ds)
        rel = [b.bag_id for b in ds.bags
               if gt.label_window(b.frame_lo, b.frame_hi)][:4]
        engine.feed({b: True for b in rel})
        assert not np.array_equal(engine.weights_, np.ones(3))
        assert engine.weights_.sum() == pytest.approx(1.0)  # percentage

    def test_irrelevant_only_feedback_keeps_weights(self, toy):
        ds, gt = toy
        engine = WeightedRFEngine(ds)
        irrel = [b.bag_id for b in ds.bags
                 if not gt.label_window(b.frame_lo, b.frame_hi)][:4]
        engine.feed({b: False for b in irrel})
        assert np.array_equal(engine.weights_, np.ones(3))

    def test_low_variance_feature_gets_high_weight(self, toy):
        ds, gt = toy
        engine = WeightedRFEngine(ds)
        rel = [b.bag_id for b in ds.bags
               if gt.label_window(b.frame_lo, b.frame_hi)]
        engine.feed({b: True for b in rel})
        # Relevant instances vary most in vdiff (the spike feature), so
        # vdiff gets the SMALLEST weight: the baseline's known blind spot.
        assert engine.weights_[1] == min(engine.weights_)

    @pytest.mark.parametrize("norm", ["percentage", "linear", "none"])
    def test_all_normalizations_run(self, toy, norm):
        ds, gt = toy
        engine = WeightedRFEngine(ds, normalization=norm)
        session = RetrievalSession(engine, OracleUser(gt), top_k=10)
        accs = [r.accuracy() for r in session.run(3)]
        assert all(0.0 <= a <= 1.0 for a in accs)

    def test_unknown_normalization_rejected(self, toy):
        ds, _ = toy
        with pytest.raises(ConfigurationError):
            WeightedRFEngine(ds, normalization="bogus")

    def test_cannot_separate_brake_from_event(self):
        """Sign-blind scoring keeps confusing brakes with events — the
        structural weakness the paper's Figure 9 exposes."""
        ds, gt = make_toy(n_event=8, n_brake=8, n_normal=16, seed=5)
        engine = WeightedRFEngine(ds)
        rel = [b.bag_id for b in ds.bags
               if gt.label_window(b.frame_lo, b.frame_hi)]
        engine.feed({b: (b in rel) for b in [b.bag_id for b in ds.bags][:20]})
        scores = engine.bag_scores()
        rel_mask = np.array([b.bag_id in rel for b in ds.bags])
        brake_mask = np.array([
            (not gt.label_window(b.frame_lo, b.frame_hi))
            and max(np.abs(i.matrix[:, 1]).max() for i in b.instances) > 0.8
            for b in ds.bags
        ])
        # Brake bags score comparably to event bags under weighted RF.
        assert scores[brake_mask].mean() > 0.5 * scores[rel_mask].mean()
