"""Tests for merged multi-clip datasets and the multi-clip oracle."""

import numpy as np
import pytest

from repro.core import MILRetrievalEngine, MultiClipOracle, RetrievalSession
from repro.core.bags import merge_datasets
from repro.errors import ConfigurationError
from tests.core.conftest import make_toy


class TestMergeDatasets:
    def test_merge_two(self):
        ds_a, _ = make_toy(n_event=3, n_brake=3, n_normal=4, seed=0)
        ds_b, _ = make_toy(n_event=2, n_brake=2, n_normal=4, seed=1)
        for bag in ds_b.bags:
            object.__setattr__(bag, "clip_id", "toyB")
        merged = merge_datasets([ds_a, ds_b])
        assert len(merged) == len(ds_a) + len(ds_b)
        assert merged.n_instances == ds_a.n_instances + ds_b.n_instances

    def test_ids_renumbered_uniquely(self):
        ds_a, _ = make_toy(n_event=2, n_brake=2, n_normal=2, seed=0)
        ds_b, _ = make_toy(n_event=2, n_brake=2, n_normal=2, seed=1)
        merged = merge_datasets([ds_a, ds_b])
        bag_ids = [b.bag_id for b in merged.bags]
        inst_ids = [i.instance_id for i in merged.all_instances()]
        assert bag_ids == sorted(set(bag_ids))
        assert inst_ids == sorted(set(inst_ids))

    def test_source_clip_id_preserved(self):
        ds_a, _ = make_toy(n_event=1, n_brake=1, n_normal=1, seed=0)
        ds_b, _ = make_toy(n_event=1, n_brake=1, n_normal=1, seed=1)
        for bag in ds_b.bags:
            object.__setattr__(bag, "clip_id", "toyB")
        merged = merge_datasets([ds_a, ds_b])
        clips = {b.clip_id for b in merged.bags}
        assert clips == {"toy", "toyB"}

    def test_matrices_preserved(self):
        ds_a, _ = make_toy(n_event=2, n_brake=0, n_normal=2, seed=0)
        merged = merge_datasets([ds_a])
        for orig, new in zip(ds_a.all_instances(),
                             merged.all_instances()):
            assert np.array_equal(orig.matrix, new.matrix)

    def test_incompatible_rejected(self):
        ds_a, _ = make_toy(n_event=1, n_brake=1, n_normal=1)
        ds_b, _ = make_toy(n_event=1, n_brake=1, n_normal=1)
        ds_b.window_size = 5
        with pytest.raises(ConfigurationError, match="not compatible"):
            merge_datasets([ds_a, ds_b])

    def test_empty_list_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_datasets([])


class TestMultiClipOracle:
    def _merged_with_truths(self):
        ds_a, gt_a = make_toy(n_event=3, n_brake=3, n_normal=6, seed=0)
        ds_b, gt_b = make_toy(n_event=3, n_brake=3, n_normal=6, seed=1)
        for bag in ds_b.bags:
            object.__setattr__(bag, "clip_id", "toyB")
        merged = merge_datasets([ds_a, ds_b])
        return merged, {"toy": gt_a, "toyB": gt_b}

    def test_routes_to_right_truth(self):
        merged, truths = self._merged_with_truths()
        oracle = MultiClipOracle(truths)
        from repro.core import OracleUser

        users = {cid: OracleUser(gt) for cid, gt in truths.items()}
        for bag in merged.bags:
            assert oracle.true_label(bag) == users[bag.clip_id].true_label(bag)

    def test_unknown_clip_rejected(self):
        merged, truths = self._merged_with_truths()
        oracle = MultiClipOracle({"toy": truths["toy"]})
        bad = next(b for b in merged.bags if b.clip_id == "toyB")
        with pytest.raises(ConfigurationError, match="unknown clip"):
            oracle.label(bad)

    def test_empty_truths_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiClipOracle({})

    def test_session_over_merged_corpus(self):
        merged, truths = self._merged_with_truths()
        engine = MILRetrievalEngine(merged)
        session = RetrievalSession(engine, MultiClipOracle(truths),
                                   top_k=10)
        accs = [r.accuracy() for r in session.run(3)]
        assert len(accs) == 3
        assert accs[-1] >= accs[0]
