"""Tests for the One-class-SVM MIL retrieval engine (paper Section 5)."""

import numpy as np
import pytest

from repro.core import MILRetrievalEngine, OracleUser, RetrievalSession
from repro.core.engine import _parse_policy
from repro.errors import ConfigurationError
from tests.core.conftest import make_toy


class TestPolicyParsing:
    def test_all(self):
        assert _parse_policy("all") is None

    @pytest.mark.parametrize("policy,m", [("top1", 1), ("top2", 2),
                                          ("top10", 10)])
    def test_top_m(self, policy, m):
        assert _parse_policy(policy) == m

    @pytest.mark.parametrize("policy", ["top0", "top-1", "best", "topx"])
    def test_invalid(self, policy):
        with pytest.raises(ConfigurationError):
            _parse_policy(policy)


class TestInitialRanking:
    def test_matches_heuristic_before_feedback(self, toy):
        ds, _ = toy
        from repro.core.heuristics import heuristic_scores

        engine = MILRetrievalEngine(ds)
        bag_scores, _ = heuristic_scores(ds)
        expected = [ds.bags[i].bag_id for i in np.argsort(-bag_scores,
                                                          kind="stable")]
        # Ties broken by bag id in both.
        assert set(engine.top_k(10)) == set(expected[:10])

    def test_rank_is_a_permutation(self, toy):
        ds, _ = toy
        ranking = MILRetrievalEngine(ds).rank()
        assert sorted(ranking) == sorted(b.bag_id for b in ds.bags)

    def test_top_k_validation(self, toy):
        ds, _ = toy
        with pytest.raises(ConfigurationError):
            MILRetrievalEngine(ds).top_k(0)


class TestFeedback:
    def test_labels_accumulate(self, toy):
        ds, _ = toy
        engine = MILRetrievalEngine(ds)
        engine.feed({0: True, 1: False})
        engine.feed({2: True})
        assert set(engine.relevant_bag_ids) <= {0, 2}
        assert len(engine.labels) == 3

    def test_unknown_bag_rejected(self, toy):
        ds, _ = toy
        with pytest.raises(ConfigurationError, match="unknown bag"):
            MILRetrievalEngine(ds).feed({9999: True})

    def test_no_relevant_feedback_keeps_heuristic(self, toy):
        ds, _ = toy
        engine = MILRetrievalEngine(ds)
        before = engine.rank()
        engine.feed({before[-1]: False})
        assert engine.rank() == before
        assert not engine.has_relevant_feedback

    def test_nu_follows_eq9(self, toy_multi):
        ds, gt = toy_multi
        engine = MILRetrievalEngine(ds, training_policy="all", z=0.05)
        rel = [b.bag_id for b in ds.bags
               if gt.label_window(b.frame_lo, b.frame_hi)][:5]
        engine.feed({b: True for b in rel})
        h, H = len(rel), engine.training_size_
        assert H == 3 * h  # policy 'all', 3 instances per bag
        assert engine.last_nu_ == pytest.approx(1 - (h / H + 0.05))

    def test_nu_clipped_at_bounds(self, toy):
        ds, gt = toy
        engine = MILRetrievalEngine(ds, training_policy="top1",
                                    nu_bounds=(0.05, 0.95))
        rel = [b.bag_id for b in ds.bags
               if gt.label_window(b.frame_lo, b.frame_hi)][:4]
        engine.feed({b: True for b in rel})
        assert engine.last_nu_ == 0.05  # 1 - (1 + z) clipped up to the min

    def test_top1_training_size(self, toy_multi):
        ds, gt = toy_multi
        engine = MILRetrievalEngine(ds, training_policy="top1")
        rel = [b.bag_id for b in ds.bags
               if gt.label_window(b.frame_lo, b.frame_hi)][:6]
        engine.feed({b: True for b in rel})
        assert engine.training_size_ == 6


class TestLearningBehaviour:
    def test_accuracy_improves_on_toy(self, toy):
        """On confusable toy data, MIL beats its own initial round."""
        ds, gt = toy
        engine = MILRetrievalEngine(ds)
        session = RetrievalSession(engine, OracleUser(gt), top_k=10)
        accs = [r.accuracy() for r in session.run(4)]
        assert accs[-1] >= accs[0]
        assert max(accs[1:]) > accs[0]

    def test_separates_brake_from_event(self):
        """After feedback, brake-and-resume bags fall below event bags."""
        ds, gt = make_toy(n_event=8, n_brake=8, n_normal=16, seed=5)
        engine = MILRetrievalEngine(ds)
        rel = [b.bag_id for b in ds.bags
               if gt.label_window(b.frame_lo, b.frame_hi)]
        engine.feed({b: (b in rel) for b in [b.bag_id for b in ds.bags][:20]})
        scores = engine.bag_scores()
        rel_mask = np.array([b.bag_id in rel for b in ds.bags])
        assert scores[rel_mask].mean() > scores[~rel_mask].mean()

    def test_validation_of_params(self, toy):
        ds, _ = toy
        with pytest.raises(ConfigurationError):
            MILRetrievalEngine(ds, z=0.9)
        with pytest.raises(ConfigurationError):
            MILRetrievalEngine(ds, training_policy="bogus")
        with pytest.raises(ConfigurationError):
            MILRetrievalEngine(ds, nu_bounds=(0.0, 0.5))

    def test_empty_dataset_rejected(self):
        from repro.core.bags import MILDataset

        ds = MILDataset(clip_id="x", event_name="accident",
                        feature_names=("a",), window_size=3, sampling_rate=5)
        with pytest.raises(ConfigurationError, match="no bags"):
            MILRetrievalEngine(ds)

    def test_deterministic(self, toy):
        ds, gt = toy
        runs = []
        for _ in range(2):
            engine = MILRetrievalEngine(ds)
            session = RetrievalSession(engine, OracleUser(gt), top_k=10)
            session.run(3)
            runs.append(session.accuracies())
        assert runs[0] == runs[1]

    def test_linear_kernel_variant(self, toy):
        ds, gt = toy
        engine = MILRetrievalEngine(ds, kernel="linear")
        session = RetrievalSession(engine, OracleUser(gt), top_k=10)
        accs = [r.accuracy() for r in session.run(3)]
        assert all(0.0 <= a <= 1.0 for a in accs)
