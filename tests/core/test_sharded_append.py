"""Live shard appends: in-place growth must never serve stale caches.

Satellite regression for streaming ingestion: ``ShardedCorpus.refresh``
lets an open engine absorb a streamed append *in place*.  Everything
memoized against the old bag population — candidate-position prefixes,
heuristic order, the standardized matrix and its GramCache columns, the
engine's scaler and round streams — must be invalidated, so a warm
session ranks exactly like a fresh engine built over the grown corpus.
"""

import numpy as np
import pytest

from repro.core.bags import Bag, Instance, MILDataset
from repro.core.sharded import ShardedCorpus, ShardedRetrievalEngine, ShardSpec
from repro.errors import ConfigurationError


def make_bags(clip_id, n_bags, *, start=0, seed=0, n_inst=2):
    rng = np.random.default_rng(seed + 17 * start)
    bags = []
    for b in range(start, start + n_bags):
        instances = tuple(
            Instance(instance_id=0, bag_id=b, track_id=b * 10 + j,
                     matrix=rng.normal(size=(3, 2)) + (3.0 if b % 3 else 0))
            for j in range(n_inst)
        )
        bags.append(Bag(bag_id=b, clip_id=clip_id, frame_lo=b * 10,
                        frame_hi=b * 10 + 9, instances=instances))
    return bags


class Backing:
    """Mutable per-clip bag lists standing in for the database."""

    def __init__(self, **clips):
        self.clips = dict(clips)
        self.loads = 0

    def loader(self, clip_id):
        def load():
            self.loads += 1
            bags = self.clips[clip_id]
            return MILDataset(
                clip_id=clip_id, event_name="accident",
                feature_names=("f0", "f1"), window_size=3,
                sampling_rate=5, bags=list(bags))
        return load

    def spec(self, clip_id):
        bags = self.clips[clip_id]
        return ShardSpec(
            clip_id=clip_id, n_bags=len(bags),
            n_instances=sum(b.n_instances for b in bags),
            loader=self.loader(clip_id))

    def corpus(self, *clip_ids):
        return ShardedCorpus([self.spec(c) for c in clip_ids],
                             corpus_id="live")

    def grow(self, clip_id, n_new, **kwargs):
        bags = self.clips[clip_id]
        bags.extend(make_bags(clip_id, n_new, start=len(bags), **kwargs))
        return len(bags), sum(b.n_instances for b in bags)


@pytest.fixture()
def backing():
    return Backing(a=make_bags("a", 6, seed=1),
                   b=make_bags("b", 5, seed=2))


class TestRefresh:
    def test_warm_engine_matches_fresh_after_append(self, backing):
        """The satellite-1 regression: query across an append."""
        corpus = backing.corpus("a", "b")
        engine = ShardedRetrievalEngine(corpus)
        labels = {0: True, 7: True, 2: False}
        engine.feed(labels)
        engine.rank()  # warm: scaler fitted, GramCache columns built
        assert all(s.gram_cache is not None for s in corpus.shards())

        n_bags, n_inst = backing.grow("a", 3)
        assert corpus.refresh("a", n_bags=n_bags, n_instances=n_inst) == 3
        warm = engine.rank()

        fresh_engine = ShardedRetrievalEngine(backing.corpus("a", "b"))
        fresh_engine.feed(labels)
        assert warm == fresh_engine.rank()
        assert sorted(warm) == list(range(len(corpus)))

    def test_untrained_engine_ranks_appended_bags(self, backing):
        corpus = backing.corpus("a", "b")
        engine = ShardedRetrievalEngine(corpus)
        engine.rank()
        n_bags, n_inst = backing.grow("a", 2)
        corpus.refresh("a", n_bags=n_bags, n_instances=n_inst)
        assert sorted(engine.rank()) == list(range(len(corpus)))

    def test_matching_counts_are_a_noop(self, backing):
        corpus = backing.corpus("a", "b")
        corpus.shard("a")
        loads = backing.loads
        mutations = corpus.mutation_count
        spec = backing.spec("a")
        assert corpus.refresh("a", n_bags=spec.n_bags,
                              n_instances=spec.n_instances) == 0
        assert backing.loads == loads
        assert corpus.mutation_count == mutations

    def test_shrink_rejected(self, backing):
        corpus = backing.corpus("a", "b")
        with pytest.raises(ConfigurationError, match="shrink"):
            corpus.refresh("a", n_bags=1, n_instances=1)

    def test_unknown_clip_rejected(self, backing):
        corpus = backing.corpus("a")
        with pytest.raises(ConfigurationError, match="no shard"):
            corpus.refresh("zzz", n_bags=1, n_instances=1)

    def test_later_loaded_shards_reoffset(self, backing):
        corpus = backing.corpus("a", "b")
        before_b = corpus.shard("b")
        assert before_b.bag_offset == 6
        n_bags, n_inst = backing.grow("a", 2)
        corpus.refresh("a", n_bags=n_bags, n_instances=n_inst)
        after_b = corpus.shard("b")
        assert after_b is not before_b
        assert after_b.bag_offset == 8
        assert after_b.metadata_version > before_b.metadata_version
        # Global ids stay dense and every bag resolvable.
        assert {corpus.bag_by_id(i).bag_id
                for i in range(len(corpus))} == set(range(len(corpus)))

    def test_unloaded_shard_grows_lazily(self, backing):
        corpus = backing.corpus("a", "b")
        n_bags, n_inst = backing.grow("a", 2)
        corpus.refresh("a", n_bags=n_bags, n_instances=n_inst)
        assert corpus.loaded_clip_ids == []
        assert corpus.shard("a").n_bags == n_bags


class TestAppendLocalInvalidation:
    def test_candidate_memo_and_heuristics_invalidated(self, backing):
        corpus = backing.corpus("a")
        shard = corpus.shard("a")
        before = shard.candidate_positions(None)
        assert len(before) == 6
        _ = shard.heuristic_rank
        n_bags, n_inst = backing.grow("a", 2)
        corpus.refresh("a", n_bags=n_bags, n_instances=n_inst)
        assert corpus.shard("a") is shard  # grown in place
        after = shard.candidate_positions(None)
        assert len(after) == 8
        assert len(shard.heuristic_bags) == 8
        assert len(shard.heuristic_rank) == 8
        assert shard.matrix is None and shard.gram_cache is None
        assert shard.matrix_raw.shape[0] == n_inst

    def test_replayed_delta_is_idempotent(self, backing):
        corpus = backing.corpus("a")
        shard = corpus.shard("a")
        delta = make_bags("a", 2, start=6)
        assert shard.append_local(delta) == 2
        assert shard.append_local(delta) == 0
        assert shard.n_bags == 8

    def test_non_contiguous_tail_rejected(self, backing):
        shard = backing.corpus("a").shard("a")
        gap = make_bags("a", 1, start=9)
        with pytest.raises(ConfigurationError, match="contiguous"):
            shard.append_local(gap)

    def test_reload_drops_all_memos(self, backing):
        # reload() keeps the spec's counts (count changes go through
        # refresh) but must rebuild the shard object wholesale, so no
        # memo built against the old data can survive.
        corpus = backing.corpus("a")
        shard = corpus.shard("a")
        shard.candidate_positions(3)
        assert shard.heuristic_order_computes == 1
        mutations = corpus.mutation_count
        reloaded = corpus.reload("a")
        assert reloaded is not shard
        assert reloaded.metadata_version == shard.metadata_version + 1
        assert reloaded.heuristic_order_computes == 0
        assert reloaded._candidate_cache == {}
        assert corpus.mutation_count == mutations + 1
