"""Tests for the oracle user and retrieval session."""

import pytest

from repro.core import MILRetrievalEngine, OracleUser, RetrievalSession
from repro.errors import ConfigurationError
from tests.core.conftest import make_toy


class TestOracleUser:
    def test_labels_follow_ground_truth(self, toy):
        ds, gt = toy
        user = OracleUser(gt)
        for bag in ds.bags:
            assert user.label(bag) == gt.label_window(bag.frame_lo,
                                                       bag.frame_hi)

    def test_kind_filter(self, toy):
        ds, gt = toy
        user = OracleUser(gt, kinds=["u_turn"])  # nothing matches
        assert not any(user.label(b) for b in ds.bags)

    def test_flip_prob_adds_noise(self, toy):
        ds, gt = toy
        noisy = OracleUser(gt, flip_prob=1.0, seed=1)
        clean = OracleUser(gt, seed=1)
        flips = sum(noisy.label(b) != clean.label(b) for b in ds.bags)
        assert flips == len(ds.bags)

    def test_flip_prob_validated(self, toy):
        _, gt = toy
        with pytest.raises(ConfigurationError):
            OracleUser(gt, flip_prob=1.5)

    def test_label_bags_returns_map(self, toy):
        ds, gt = toy
        labels = OracleUser(gt).label_bags(ds.bags[:5])
        assert set(labels) == {b.bag_id for b in ds.bags[:5]}


class TestRetrievalSession:
    def test_round_structure(self, toy):
        ds, gt = toy
        session = RetrievalSession(MILRetrievalEngine(ds), OracleUser(gt),
                                   top_k=10)
        rounds = session.run(3)
        assert [r.round_index for r in rounds] == [0, 1, 2]
        for r in rounds:
            assert len(r.returned_bag_ids) == 10
            assert set(r.labels) == set(r.returned_bag_ids)

    def test_accuracy_definition(self, toy):
        ds, gt = toy
        session = RetrievalSession(MILRetrievalEngine(ds), OracleUser(gt),
                                   top_k=10)
        result = session.run_round()
        expected = sum(result.labels.values()) / 10
        assert result.accuracy() == pytest.approx(expected)

    def test_labels_feed_engine(self, toy):
        ds, gt = toy
        engine = MILRetrievalEngine(ds)
        session = RetrievalSession(engine, OracleUser(gt), top_k=10)
        session.run_round()
        assert len(engine.labels) == 10

    def test_top_k_larger_than_dataset(self, toy):
        ds, gt = toy
        session = RetrievalSession(MILRetrievalEngine(ds), OracleUser(gt),
                                   top_k=10_000)
        result = session.run_round()
        assert len(result.returned_bag_ids) == len(ds.bags)

    def test_validation(self, toy):
        ds, gt = toy
        with pytest.raises(ConfigurationError):
            RetrievalSession(MILRetrievalEngine(ds), OracleUser(gt),
                             top_k=0)
        with pytest.raises(ConfigurationError):
            RetrievalSession(MILRetrievalEngine(ds), OracleUser(gt),
                             top_k=5).run(0)

    def test_accuracies_helper(self, toy):
        ds, gt = toy
        session = RetrievalSession(MILRetrievalEngine(ds), OracleUser(gt),
                                   top_k=10)
        session.run(4)
        accs = session.accuracies()
        assert len(accs) == 4
        assert all(0.0 <= a <= 1.0 for a in accs)
