"""Shared fixtures for the core MIL/RF tests.

``toy_dataset`` builds a small, fully controlled MIL dataset with known
instance semantics: "event" instances carry a deceleration spike (the
signed-vdiff signature of an incident), "brake" instances a V-shaped
brake-and-resume, "normal" instances are quiet.  Ground truth for the
oracle is expressed through frame windows.
"""

import numpy as np
import pytest

from repro.core.bags import Bag, Instance, MILDataset
from repro.sim.ground_truth import GroundTruth
from repro.sim.incidents import IncidentRecord


def _matrix(kind, rng):
    noise = rng.normal(0, 0.05, size=(3, 3))
    base = np.zeros((3, 3))
    if kind == "event":
        # columns: [inv_mdist, vdiff, theta].  Deceleration that sticks,
        # with a nearby vehicle.  Magnitudes overlap the brake class so
        # the square-sum heuristic cannot fully separate them.
        base[1] = [0.4, -rng.uniform(0.8, 1.5), rng.uniform(0.1, 0.4)]
        base[2] = [0.45, -rng.uniform(0.5, 1.2), 0.1]
    elif kind == "brake":
        # V-shaped brake-and-resume, alone in frame.
        base[1] = [0.0, -rng.uniform(1.0, 1.7), 0.05]
        base[2] = [0.0, rng.uniform(0.9, 1.6), 0.05]
    return base + noise


def make_toy(n_event=8, n_brake=8, n_normal=24, seed=0,
             instances_per_bag=1):
    """Build (dataset, ground_truth).  One bag per 15-frame window."""
    rng = np.random.default_rng(seed)
    kinds = (["event"] * n_event + ["brake"] * n_brake
             + ["normal"] * n_normal)
    rng.shuffle(kinds)
    bags, incidents = [], []
    iid = 0
    for b, kind in enumerate(kinds):
        lo, hi = b * 15, b * 15 + 14
        instances = []
        members = [kind] + ["normal"] * (instances_per_bag - 1)
        for member in members:
            instances.append(
                Instance(instance_id=iid, bag_id=b, track_id=iid,
                         matrix=_matrix(member, rng))
            )
            iid += 1
        bags.append(Bag(bag_id=b, clip_id="toy", frame_lo=lo, frame_hi=hi,
                        instances=tuple(instances)))
        if kind == "event":
            incidents.append(
                IncidentRecord("collision", (iid - 1,), lo + 2, hi - 2)
            )
    dataset = MILDataset(
        clip_id="toy", event_name="accident",
        feature_names=("inv_mdist", "vdiff", "theta"),
        window_size=3, sampling_rate=5, bags=bags,
    )
    return dataset, GroundTruth(incidents=incidents)


@pytest.fixture()
def toy():
    return make_toy()


@pytest.fixture()
def toy_multi():
    """Bags with 3 instances each (one meaningful + two normal)."""
    return make_toy(instances_per_bag=3, seed=1)
