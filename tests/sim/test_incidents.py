"""Unit tests for scripted incidents and their ground-truth records."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim import (
    Route,
    Speeding,
    SuddenStop,
    TrafficWorld,
    UTurn,
    Vehicle,
    VehicleSpec,
    WallCrash,
)
from repro.sim.incidents import IncidentRecord, make_collision_pair


def _world(width=300, height=120):
    return TrafficWorld(width, height, seed=0, speed_jitter=0.0)


def _drive(world, n):
    speeds = []
    for _ in range(n):
        states = world.step()
        speeds.append({s.vid: s for s in states})
    return speeds


class TestIncidentRecord:
    def test_overlaps(self):
        rec = IncidentRecord("collision", (1, 2), 10, 20)
        assert rec.overlaps(0, 10)
        assert rec.overlaps(20, 30)
        assert rec.overlaps(12, 15)
        assert not rec.overlaps(21, 40)
        assert not rec.overlaps(0, 9)

    def test_involves(self):
        rec = IncidentRecord("collision", (1, 2), 10, 20)
        assert rec.involves(1) and rec.involves(2)
        assert not rec.involves(3)


class TestSuddenStop:
    def test_vehicle_stops_then_resumes(self):
        world = _world()
        route = Route.straight((0.0, 60.0), (290.0, 60.0), speed=3.0)
        vehicle = Vehicle(VehicleSpec(0), route,
                          controller=SuddenStop(start=10, hold=15))
        world.add_vehicle(vehicle)
        frames = _drive(world, 70)
        speeds = [f[0].speed for f in frames if 0 in f]
        # Moving at the start, fully stopped somewhere, moving again later.
        assert speeds[5] > 2.0
        assert min(speeds) < 0.1
        assert speeds[-1] > 2.0

    def test_incident_recorded_once_with_window(self):
        world = _world()
        route = Route.straight((0.0, 60.0), (290.0, 60.0), speed=3.0)
        world.add_vehicle(
            Vehicle(VehicleSpec(0), route,
                    controller=SuddenStop(start=10, hold=15))
        )
        _drive(world, 70)
        assert len(world.incidents) == 1
        rec = world.incidents[0]
        assert rec.kind == "sudden_stop"
        assert rec.vehicle_ids == (0,)
        assert rec.frame_start == 10
        assert rec.frame_end > rec.frame_start

    def test_rejects_bad_hold(self):
        with pytest.raises(Exception):
            SuddenStop(start=5, hold=0)


class TestWallCrash:
    def test_vehicle_reaches_wall_and_stops(self):
        world = _world()
        route = Route.straight((0.0, 60.0), (290.0, 60.0), speed=3.0)
        wall_y = 30.0
        vehicle = Vehicle(VehicleSpec(0), route,
                          controller=WallCrash(start=10, wall_y=wall_y,
                                               hold=30))
        world.add_vehicle(vehicle)
        frames = _drive(world, 80)
        assert len(world.incidents) == 1
        rec = world.incidents[0]
        assert rec.kind == "wall_crash"
        # At the recorded crash time the vehicle is at the wall and slow.
        crash_states = [f[0] for f in frames[rec.frame_end - 5:] if 0 in f]
        assert crash_states, "vehicle vanished before the crash settled"
        assert abs(crash_states[0].y - wall_y) < 6.0
        assert crash_states[-1].speed < 0.5

    def test_vehicle_towed_after_hold(self):
        world = _world()
        route = Route.straight((0.0, 60.0), (290.0, 60.0), speed=3.0)
        vehicle = Vehicle(VehicleSpec(0), route,
                          controller=WallCrash(start=5, wall_y=30.0, hold=20))
        world.add_vehicle(vehicle)
        _drive(world, 120)
        assert vehicle.retired


class TestCollision:
    def _collision_world(self, trigger_dist=15.0):
        world = _world(width=200, height=200)
        # Perpendicular routes crossing at (100, 100) at the same speed and
        # equal distances, so the two vehicles meet at the center.
        route_a = Route.straight((20.0, 100.0), (180.0, 100.0), speed=2.0)
        route_b = Route.straight((100.0, 20.0), (100.0, 180.0), speed=2.0)
        ctrl_a, ctrl_b = make_collision_pair(0, 1, window=(10, 80),
                                             trigger_dist=trigger_dist,
                                             hold=25)
        world.add_vehicle(Vehicle(VehicleSpec(0), route_a, controller=ctrl_a))
        world.add_vehicle(Vehicle(VehicleSpec(1), route_b, controller=ctrl_b))
        return world

    def test_collision_triggers_and_records_both_vehicles(self):
        world = self._collision_world()
        _drive(world, 100)
        assert len(world.incidents) == 1
        rec = world.incidents[0]
        assert rec.kind == "collision"
        assert set(rec.vehicle_ids) == {0, 1}

    def test_vehicles_stop_after_collision(self):
        world = self._collision_world()
        frames = _drive(world, 70)
        rec = world.incidents[0]
        late = [f for f in frames[rec.frame_end:] if 0 in f and 1 in f]
        assert late, "both vehicles should persist for the hold period"
        assert late[-1][0].speed < 0.5
        assert late[-1][1].speed < 0.5

    def test_no_trigger_outside_window(self):
        world = _world(width=200, height=200)
        route_a = Route.straight((20.0, 100.0), (180.0, 100.0), speed=2.0)
        route_b = Route.straight((100.0, 20.0), (100.0, 180.0), speed=2.0)
        # Watch window long past the actual crossing time.
        ctrl_a, ctrl_b = make_collision_pair(0, 1, window=(500, 600))
        world.add_vehicle(Vehicle(VehicleSpec(0), route_a, controller=ctrl_a))
        world.add_vehicle(Vehicle(VehicleSpec(1), route_b, controller=ctrl_b))
        _drive(world, 120)
        assert world.incidents == []

    def test_rejects_degenerate_window(self):
        with pytest.raises(ConfigurationError):
            make_collision_pair(0, 1, window=(50, 50))


class TestUTurn:
    def test_direction_reverses(self):
        world = _world()
        route = Route.straight((0.0, 60.0), (290.0, 60.0), speed=3.0)
        vehicle = Vehicle(VehicleSpec(0), route,
                          controller=UTurn(start=10, duration=15))
        world.add_vehicle(vehicle)
        frames = _drive(world, 60)
        early_vx = frames[5][0].vx
        with_vehicle = [f for f in frames[40:] if 0 in f]
        assert with_vehicle, "vehicle should still be in frame after turning"
        late_vx = with_vehicle[0][0].vx
        assert early_vx > 1.0
        assert late_vx < -1.0
        assert world.incidents[0].kind == "u_turn"

    def test_incident_window_matches_duration(self):
        world = _world()
        route = Route.straight((0.0, 60.0), (290.0, 60.0), speed=3.0)
        world.add_vehicle(
            Vehicle(VehicleSpec(0), route, controller=UTurn(10, duration=15))
        )
        _drive(world, 40)
        rec = world.incidents[0]
        assert (rec.frame_start, rec.frame_end) == (10, 25)


class TestSpeeding:
    def test_speed_exceeds_nominal(self):
        world = _world()
        route = Route.straight((0.0, 60.0), (290.0, 60.0), speed=2.0)
        vehicle = Vehicle(VehicleSpec(0), route,
                          controller=Speeding(start=5, duration=60,
                                              factor=2.0))
        world.add_vehicle(vehicle)
        frames = _drive(world, 40)
        speeds = [f[0].speed for f in frames if 0 in f]
        assert max(speeds) > 3.2
        assert world.incidents[0].kind == "speeding"

    def test_rejects_factor_below_one(self):
        with pytest.raises(ConfigurationError):
            Speeding(start=0, duration=10, factor=0.9)
