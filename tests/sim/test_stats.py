"""Tests for workload statistics."""

import pytest

from repro.sim import highway, intersection, tunnel
from repro.sim.stats import traffic_statistics


class TestTrafficStatistics:
    def test_tunnel_is_sparse(self, small_tunnel):
        stats = traffic_statistics(small_tunnel)
        assert stats.n_frames == small_tunnel.n_frames
        assert stats.mean_concurrency < 6.0
        assert stats.n_vehicles > 0

    def test_intersection_denser_than_tunnel(self, small_tunnel,
                                             small_intersection):
        tunnel_stats = traffic_statistics(small_tunnel)
        ix_stats = traffic_statistics(small_intersection)
        assert ix_stats.mean_concurrency > tunnel_stats.mean_concurrency

    def test_speeds_match_scenario_nominal(self, small_tunnel):
        stats = traffic_statistics(small_tunnel)
        # Tunnel nominal is ~3 px/frame with jitter and braking episodes.
        assert 1.5 < stats.mean_speed < 3.5
        assert stats.speed_std > 0.0

    def test_stop_fraction_reflects_incidents(self):
        calm = tunnel(n_frames=600, seed=12, spawn_interval=(60.0, 90.0),
                      n_wall_crashes=1, n_sudden_stops=1,
                      benign_fraction=0.0)
        eventful = tunnel(n_frames=600, seed=12,
                          spawn_interval=(60.0, 90.0),
                          n_wall_crashes=3, n_sudden_stops=3,
                          benign_fraction=0.9)
        assert (traffic_statistics(eventful).stop_fraction
                >= traffic_statistics(calm).stop_fraction)

    def test_incident_rate(self, small_intersection):
        stats = traffic_statistics(small_intersection)
        expected = 1000.0 * len(small_intersection.incidents) \
            / small_intersection.n_frames
        assert stats.incidents_per_1k_frames == pytest.approx(expected)
        assert "collision" in stats.incident_kinds

    def test_summary_readable(self, small_tunnel):
        text = traffic_statistics(small_tunnel).summary()
        assert "vehicles" in text
        assert "incidents per 1k frames" in text

    def test_as_dict_roundtrip(self, small_tunnel):
        stats = traffic_statistics(small_tunnel)
        data = stats.as_dict()
        assert data["n_frames"] == small_tunnel.n_frames
        assert set(data) >= {"mean_concurrency", "mean_speed",
                             "stop_fraction"}

    def test_paper_scale_shapes(self):
        """Default workloads keep the paper's sparse/dense contrast."""
        tunnel_stats = traffic_statistics(tunnel(seed=0))
        ix_stats = traffic_statistics(intersection(seed=1))
        assert tunnel_stats.mean_concurrency < ix_stats.mean_concurrency
        assert tunnel_stats.n_frames > 4 * ix_stats.n_frames
