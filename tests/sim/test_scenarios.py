"""Scenario-level tests: workload shape, determinism, ground truth."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim import GroundTruth, highway, intersection, tunnel
from repro.sim.incidents import ACCIDENT_KINDS


class TestTunnelScenario:
    def test_default_scale_matches_paper_clip1(self):
        """Clip 1: 2504 frames, sparse traffic, single-vehicle accidents."""
        result = tunnel(seed=0)
        assert result.n_frames == 2500
        kinds = {r.kind for r in result.incidents}
        assert kinds <= {"wall_crash", "sudden_stop"}
        assert len(result.incidents) >= 9
        for rec in result.incidents:
            assert len(rec.vehicle_ids) == 1

    def test_traffic_is_sparse(self, small_tunnel):
        assert small_tunnel.max_concurrency() <= 6

    def test_deterministic_given_seed(self):
        a = tunnel(n_frames=700, seed=11, spawn_interval=(60.0, 90.0),
                   n_wall_crashes=1, n_sudden_stops=1)
        b = tunnel(n_frames=700, seed=11, spawn_interval=(60.0, 90.0),
                   n_wall_crashes=1, n_sudden_stops=1)
        assert a.incidents == b.incidents
        for fa, fb in zip(a.states, b.states):
            assert [s.vid for s in fa] == [s.vid for s in fb]
            assert np.allclose([s.x for s in fa], [s.x for s in fb])

    def test_different_seeds_differ(self):
        a = tunnel(n_frames=400, seed=1, n_wall_crashes=1, n_sudden_stops=0)
        b = tunnel(n_frames=400, seed=2, n_wall_crashes=1, n_sudden_stops=0)
        flat_a = [s.x for fs in a.states for s in fs]
        flat_b = [s.x for fs in b.states for s in fs]
        assert flat_a != flat_b

    def test_incident_frames_within_clip(self, small_tunnel):
        for rec in small_tunnel.incidents:
            assert 0 <= rec.frame_start < small_tunnel.n_frames
            assert rec.frame_end > rec.frame_start

    def test_too_many_incidents_rejected(self):
        with pytest.raises(ConfigurationError, match="too short"):
            tunnel(n_frames=300, seed=0, n_wall_crashes=50, n_sudden_stops=50)


class TestIntersectionScenario:
    def test_default_scale_matches_paper_clip2(self):
        """Clip 2: ~592 frames, denser traffic, multi-vehicle accidents."""
        result = intersection(seed=1)
        assert result.n_frames == 600
        collisions = [r for r in result.incidents if r.kind == "collision"]
        assert len(collisions) >= 4  # most scheduled pairs must trigger
        for rec in collisions:
            assert len(rec.vehicle_ids) >= 2

    def test_denser_than_tunnel(self, small_intersection, small_tunnel):
        assert (small_intersection.max_concurrency()
                > small_tunnel.max_concurrency())

    def test_collisions_trigger(self, small_intersection):
        assert any(r.kind == "collision"
                   for r in small_intersection.incidents)

    def test_deterministic_given_seed(self):
        a = intersection(n_frames=300, seed=5, n_collisions=2)
        b = intersection(n_frames=300, seed=5, n_collisions=2)
        assert a.incidents == b.incidents


class TestHighwayScenario:
    def test_contains_uturn_and_speeding(self):
        result = highway(seed=2)
        kinds = {r.kind for r in result.incidents}
        assert "u_turn" in kinds
        assert "speeding" in kinds

    def test_no_accident_kinds(self):
        result = highway(seed=2)
        assert not ({r.kind for r in result.incidents} & ACCIDENT_KINDS)


class TestGroundTruth:
    def test_label_window_overlap(self, small_tunnel):
        gt = GroundTruth.from_result(small_tunnel)
        rec = gt.of_kinds(None)[0]
        assert gt.label_window(rec.frame_start, rec.frame_end)
        assert gt.label_window(rec.frame_end, rec.frame_end + 100)
        assert not gt.label_window(small_tunnel.n_frames + 10,
                                   small_tunnel.n_frames + 20)

    def test_of_kinds_filters(self, small_tunnel):
        gt = GroundTruth.from_result(small_tunnel)
        stops = gt.of_kinds(["sudden_stop"])
        assert all(r.kind == "sudden_stop" for r in stops)
        assert not gt.of_kinds(["u_turn"])

    def test_involved_vehicles(self, small_intersection):
        gt = GroundTruth.from_result(small_intersection)
        vids = gt.involved_vehicles(["collision"])
        assert len(vids) >= 2

    def test_n_relevant_windows(self, small_tunnel):
        gt = GroundTruth.from_result(small_tunnel)
        windows = [(i * 15, i * 15 + 14)
                   for i in range(small_tunnel.n_frames // 15)]
        n_rel = gt.n_relevant_windows(windows)
        assert 0 < n_rel < len(windows)


class TestTrackMatcher:
    def test_true_trajectory_matches_itself(self, small_tunnel):
        from repro.sim.ground_truth import TrackMatcher

        matcher = TrackMatcher(small_tunnel)
        vid = small_tunnel.vehicle_ids()[0]
        traj = small_tunnel.trajectory_of(vid)
        assert matcher.match(traj[:, 0], traj[:, 1:]) == vid

    def test_noisy_trajectory_still_matches(self, small_tunnel, rng):
        from repro.sim.ground_truth import TrackMatcher

        matcher = TrackMatcher(small_tunnel)
        vid = small_tunnel.vehicle_ids()[1]
        traj = small_tunnel.trajectory_of(vid)
        noisy = traj[:, 1:] + rng.normal(0, 1.5, size=(len(traj), 2))
        assert matcher.match(traj[:, 0], noisy) == vid

    def test_far_away_track_matches_nothing(self, small_tunnel):
        from repro.sim.ground_truth import TrackMatcher

        matcher = TrackMatcher(small_tunnel)
        frames = np.arange(10, 40)
        points = np.full((30, 2), 1e5)
        assert matcher.match(frames, points) is None

    def test_length_mismatch_rejected(self, small_tunnel):
        from repro.sim.ground_truth import TrackMatcher

        matcher = TrackMatcher(small_tunnel)
        with pytest.raises(ValueError):
            matcher.match(np.arange(3), np.zeros((4, 2)))
