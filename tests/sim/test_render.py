"""Renderer tests: frame format, vehicle visibility, noise behaviour."""

import numpy as np
import pytest

from repro.sim import Renderer, render_clip
from repro.sim.render import build_background


class TestBackground:
    def test_tunnel_layout_has_walls(self):
        bg = build_background(320, 240, {"scenario": "tunnel"})
        assert bg.shape == (240, 320)
        road = bg[120, 160]
        wall = bg[120 - 30, 160]
        assert road > wall  # walls darker than road

    def test_intersection_has_crossing_roads(self):
        bg = build_background(320, 240, {"scenario": "intersection"})
        assert bg[120, 10] > 90      # horizontal road
        assert bg[10, 160] > 90      # vertical road
        assert bg[10, 10] < 90       # off-road corner

    def test_unknown_scenario_falls_back_to_road(self):
        bg = build_background(100, 80, {"scenario": "nonsense"})
        assert bg[40, 50] > bg[5, 50]


class TestRenderer:
    def test_frame_is_uint8_with_right_shape(self, small_tunnel):
        renderer = Renderer(small_tunnel, seed=0)
        frame = renderer.render(100)
        assert frame.dtype == np.uint8
        assert frame.shape == (small_tunnel.height, small_tunnel.width)

    def test_vehicle_pixels_differ_from_background(self, small_tunnel):
        renderer = Renderer(small_tunnel, noise_sigma=0.0,
                            flicker_sigma=0.0, seed=0)
        frame_idx = next(i for i, fs in enumerate(small_tunnel.states) if fs)
        state = small_tunnel.states[frame_idx][0]
        frame = renderer.render(frame_idx)
        x, y = int(state.x), int(state.y)
        if 0 <= x < small_tunnel.width and 0 <= y < small_tunnel.height:
            assert abs(float(frame[y, x]) - renderer.background[y, x]) > 20

    def test_empty_frame_close_to_background(self, small_tunnel):
        renderer = Renderer(small_tunnel, noise_sigma=1.0,
                            flicker_sigma=0.0, seed=0)
        empty_idx = next(
            (i for i, fs in enumerate(small_tunnel.states) if not fs), None)
        if empty_idx is None:
            pytest.skip("no empty frame in fixture")
        frame = renderer.render(empty_idx)
        diff = np.abs(frame.astype(float) - renderer.background)
        assert np.mean(diff) < 3.0

    def test_noise_changes_between_frames(self, small_tunnel):
        renderer = Renderer(small_tunnel, noise_sigma=2.0, seed=0)
        empties = [i for i, fs in enumerate(small_tunnel.states) if not fs]
        if len(empties) < 2:
            pytest.skip("need two empty frames")
        a = renderer.render(empties[0]).astype(int)
        b = renderer.render(empties[1]).astype(int)
        assert np.any(a != b)

    def test_zero_noise_is_deterministic(self, small_tunnel):
        r1 = Renderer(small_tunnel, noise_sigma=0.0, flicker_sigma=0.0)
        r2 = Renderer(small_tunnel, noise_sigma=0.0, flicker_sigma=0.0)
        assert np.array_equal(r1.render(50), r2.render(50))

    def test_negative_noise_rejected(self, small_tunnel):
        with pytest.raises(ValueError):
            Renderer(small_tunnel, noise_sigma=-1.0)

    def test_render_clip_stacks_frames(self, small_intersection):
        clip = render_clip(small_intersection, seed=1)
        assert clip.shape == (small_intersection.n_frames,
                              small_intersection.height,
                              small_intersection.width)
        assert clip.dtype == np.uint8

    def test_illumination_drift_modulates_brightness(self, small_tunnel):
        renderer = Renderer(small_tunnel, noise_sigma=0.0,
                            flicker_sigma=0.0, illumination_drift=0.3,
                            drift_period=200)
        bright = renderer.clean_frame(50).mean()   # sin peak
        dark = renderer.clean_frame(150).mean()    # sin trough
        assert bright > dark * 1.3

    def test_gain_is_periodic(self, small_tunnel):
        renderer = Renderer(small_tunnel, illumination_drift=0.2,
                            drift_period=100)
        assert renderer.gain(0) == pytest.approx(renderer.gain(100))
        assert renderer.gain(25) == pytest.approx(1.2)
        assert renderer.gain(75) == pytest.approx(0.8)

    def test_zero_drift_gain_is_one(self, small_tunnel):
        renderer = Renderer(small_tunnel)
        assert renderer.gain(123) == 1.0

    def test_bad_drift_rejected(self, small_tunnel):
        with pytest.raises(ValueError):
            Renderer(small_tunnel, illumination_drift=1.5)

    def test_frames_iterator_matches_render(self, small_tunnel):
        renderer = Renderer(small_tunnel, noise_sigma=0.0, flicker_sigma=0.0)
        for i, frame in enumerate(renderer.frames()):
            assert np.array_equal(frame, renderer.render(i))
            if i >= 3:
                break


class TestCameraProjectionClipping:
    def test_horizon_vehicle_skipped_and_counted(self, small_tunnel):
        """A vehicle on the camera's horizon plane is dropped from the
        frame — and the drop is observable, not silently swallowed."""
        from repro.obs import Telemetry, set_telemetry
        from repro.sim.camera import CameraModel
        from repro.sim.world import VehicleState

        # Homography with w = y + 1: a vehicle at y=-1 projects to
        # infinity (the camera's horizon line).
        camera = CameraModel(np.array([[1.0, 0.0, 0.0],
                                       [0.0, 0.0, 1.0],
                                       [0.0, 1.0, 1.0]]))
        renderer = Renderer(small_tunnel, camera=camera)
        horizon = VehicleState(vid=1, kind="car", x=10.0, y=-1.0,
                               vx=1.0, vy=0.0, length=4.0, width=2.0,
                               intensity=200.0)
        telemetry = Telemetry()
        previous = set_telemetry(telemetry)
        try:
            assert renderer._through_camera(horizon) is None
            assert telemetry.counter("sim.projection_clipped").total() == 1
        finally:
            set_telemetry(previous)
