"""Tests for the camera model (homographies, projection, rendering)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim.camera import CameraModel


class TestConstruction:
    def test_identity(self):
        cam = CameraModel.identity()
        pts = np.array([[10.0, 20.0], [0.0, 0.0]])
        assert np.allclose(cam.project(pts), pts)

    def test_overhead_scale_and_offset(self):
        cam = CameraModel.overhead(scale=2.0, offset=(5.0, -3.0))
        out = cam.project([[10.0, 10.0]])
        assert out[0] == pytest.approx([25.0, 17.0])

    def test_rejects_bad_matrix(self):
        with pytest.raises(ConfigurationError):
            CameraModel(np.zeros((3, 3)))
        with pytest.raises(ConfigurationError):
            CameraModel(np.eye(4))

    def test_tilted_validations(self):
        with pytest.raises(ConfigurationError):
            CameraModel.tilted(tilt_deg=90.0)
        with pytest.raises(ConfigurationError):
            CameraModel.tilted(height=0.0)

    def test_tilted_keeps_scene_in_frame(self):
        cam = CameraModel.tilted()
        corners = np.array([[0.0, 0], [320, 0], [0, 240], [320, 240]])
        projected = cam.project(corners)
        assert projected[:, 0].min() > -10 and projected[:, 0].max() < 330
        assert projected[:, 1].min() > -10 and projected[:, 1].max() < 250


class TestRoundTrip:
    @pytest.mark.parametrize("cam", [
        CameraModel.identity(),
        CameraModel.overhead(scale=1.4, offset=(10, 5)),
        CameraModel.tilted(),
        CameraModel.tilted(tilt_deg=35.0, height=400.0),
    ])
    def test_project_unproject_identity(self, cam):
        rng = np.random.default_rng(0)
        pts = rng.uniform([0, 0], [320, 240], size=(50, 2))
        back = cam.unproject(cam.project(pts))
        assert np.allclose(back, pts, atol=1e-8)

    @given(x=st.floats(0, 320), y=st.floats(0, 240),
           tilt=st.floats(0, 40))
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip_any_point(self, x, y, tilt):
        cam = CameraModel.tilted(tilt_deg=tilt)
        back = cam.unproject(cam.project([[x, y]]))
        assert np.allclose(back, [[x, y]], atol=1e-6)


class TestLocalScale:
    def test_overhead_scale_is_uniform(self):
        cam = CameraModel.overhead(scale=1.7)
        assert cam.local_scale([10.0, 10.0]) == pytest.approx(1.7)
        assert cam.local_scale([300.0, 200.0]) == pytest.approx(1.7)

    def test_tilted_scale_varies_with_depth(self):
        cam = CameraModel.tilted()
        near = cam.local_scale([160.0, 10.0])
        far = cam.local_scale([160.0, 230.0])
        assert near != pytest.approx(far, rel=0.05)

    def test_scale_matches_finite_differences(self):
        cam = CameraModel.tilted()
        p = np.array([120.0, 100.0])
        eps = 1e-4
        j = np.zeros((2, 2))
        base = cam.project([p])[0]
        for axis in range(2):
            step = p.copy()
            step[axis] += eps
            j[:, axis] = (cam.project([step])[0] - base) / eps
        expected = np.sqrt(abs(np.linalg.det(j)))
        assert cam.local_scale(p) == pytest.approx(expected, rel=1e-3)


class TestCameraRendering:
    def test_renderer_with_camera(self, small_tunnel):
        from repro.sim import Renderer

        cam = CameraModel.tilted()
        renderer = Renderer(small_tunnel, camera=cam, seed=0)
        frame = renderer.render(100)
        assert frame.shape == (small_tunnel.height, small_tunnel.width)
        assert frame.dtype == np.uint8

    def test_vehicle_appears_at_projected_position(self, small_tunnel):
        from repro.sim import Renderer

        cam = CameraModel.tilted()
        renderer = Renderer(small_tunnel, camera=cam, noise_sigma=0.0,
                            flicker_sigma=0.0)
        frame_idx = next(i for i, fs in enumerate(small_tunnel.states)
                         if fs and 20 < fs[0].x < 300)
        state = small_tunnel.states[frame_idx][0]
        u, v = cam.project([[state.x, state.y]])[0]
        frame = renderer.render(frame_idx).astype(float)
        clean = renderer.background
        ui, vi = int(round(u)), int(round(v))
        if 0 <= ui < 320 and 0 <= vi < 240:
            assert abs(frame[vi, ui] - clean[vi, ui]) > 20

    def test_identity_camera_matches_plain_render(self, small_tunnel):
        from repro.sim import Renderer

        plain = Renderer(small_tunnel, noise_sigma=0.0, flicker_sigma=0.0)
        through = Renderer(small_tunnel, camera=CameraModel.identity(),
                           noise_sigma=0.0, flicker_sigma=0.0)
        a, b = plain.render(60), through.render(60)
        # Same geometry; warped background sampling may differ by a pixel
        # at region borders.
        assert np.mean(np.abs(a.astype(int) - b.astype(int)) > 2) < 0.02

    def test_clip_from_simulation_with_camera(self, small_tunnel):
        from repro.vision import VideoClip

        cam = CameraModel.tilted()
        clip = VideoClip.from_simulation(small_tunnel, camera=cam)
        assert "camera_matrix" in clip.metadata
        assert clip.get(10).shape == (240, 320)
