"""Tests for the road-network scenario (networkx routing)."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.road_network import RoadNetwork, city_grid


class TestRoadNetwork:
    def test_grid_geometry(self):
        network = RoadNetwork.grid(4, 3, width=320, height=240)
        assert network.graph.number_of_nodes() == 12
        for node in network.graph.nodes:
            x, y = network.position(node)
            assert 0 < x < 320 and 0 < y < 240

    def test_boundary_vs_interior(self):
        network = RoadNetwork.grid(4, 3)
        assert len(network.interior_nodes()) == 2  # (1,1) and (2,1)
        assert len(network.boundary_nodes()) == 10

    def test_path_waypoints_follow_edges(self):
        network = RoadNetwork.grid(4, 3)
        waypoints = network.path_waypoints((0, 0), (3, 2))
        # Consecutive waypoints are graph neighbours: one axis at a time.
        for a, b in zip(waypoints, waypoints[1:]):
            moved = np.abs(b - a) > 1e-9
            assert moved.sum() == 1

    def test_via_routing_passes_through(self):
        network = RoadNetwork.grid(4, 3)
        via = (1, 1)
        waypoints = network.path_waypoints((0, 0), (3, 2), via=via)
        via_pos = network.position(via)
        assert any(np.allclose(w, via_pos) for w in waypoints)

    def test_random_transit_endpoints_on_boundary(self):
        network = RoadNetwork.grid(4, 3)
        rng = np.random.default_rng(0)
        boundary_positions = [tuple(network.position(n))
                              for n in network.boundary_nodes()]
        for _ in range(10):
            waypoints = network.random_transit(rng)
            assert tuple(waypoints[0]) in boundary_positions
            assert tuple(waypoints[-1]) in boundary_positions

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RoadNetwork.grid(1, 3)
        graph = nx.Graph()
        graph.add_node("a")
        graph.add_node("b")
        with pytest.raises(ConfigurationError, match="pos"):
            RoadNetwork(graph)


class TestCityGridScenario:
    @pytest.fixture(scope="class")
    def sim(self):
        return city_grid(seed=4)

    def test_traffic_turns_at_junctions(self, sim):
        """Routed vehicles change heading mid-transit (grid turns)."""
        turned = 0
        for vid in sim.vehicle_ids()[:12]:
            traj = sim.trajectory_of(vid)
            if len(traj) < 30:
                continue
            motion = np.diff(traj[:, 1:], axis=0)
            headings = np.arctan2(motion[:, 1], motion[:, 0])
            moving = np.hypot(motion[:, 0], motion[:, 1]) > 0.5
            if moving.sum() < 10:
                continue
            spread = np.ptp(np.unwrap(headings[moving]))
            if spread > 0.8:
                turned += 1
        assert turned >= 3

    def test_incidents_scheduled(self, sim):
        kinds = {r.kind for r in sim.incidents}
        assert "sudden_stop" in kinds
        assert "collision" in kinds

    def test_retrieval_works_on_grid(self, sim):
        from repro.core import MILRetrievalEngine
        from repro.eval import build_artifacts, run_protocol

        artifacts = build_artifacts(sim, mode="oracle")
        assert len(artifacts.relevant_bag_ids) >= 4
        protocol = run_protocol(artifacts, MILRetrievalEngine,
                                method="MIL", top_k=10)
        assert protocol.initial >= 0.3
        assert protocol.final >= protocol.initial - 1e-9

    def test_deterministic(self):
        a = city_grid(n_frames=400, seed=7, n_collisions=1,
                      n_sudden_stops=1)
        b = city_grid(n_frames=400, seed=7, n_collisions=1,
                      n_sudden_stops=1)
        assert a.incidents == b.incidents
