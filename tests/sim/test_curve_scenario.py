"""Tests for the curved-road scenario (theta stress case)."""

import numpy as np
import pytest

from repro.core import MILRetrievalEngine
from repro.errors import ConfigurationError
from repro.eval import build_artifacts, run_protocol
from repro.events import extract_series
from repro.sim import curve, traffic_statistics


@pytest.fixture(scope="module")
def curve_sim():
    return curve(seed=3)


class TestCurveScenario:
    def test_traffic_stays_in_frame(self, curve_sim):
        for states in curve_sim.states:
            for s in states:
                assert -45 < s.x < curve_sim.width + 45
                assert -45 < s.y < curve_sim.height + 45

    def test_vehicles_actually_turn(self, curve_sim):
        """Headings rotate continuously along the arc."""
        vid = curve_sim.vehicle_ids()[0]
        traj = curve_sim.trajectory_of(vid)
        motion = np.diff(traj[:, 1:], axis=0)
        headings = np.arctan2(motion[:, 1], motion[:, 0])
        swept = np.abs(np.unwrap(headings)[-1] - np.unwrap(headings)[0])
        assert swept > 1.0  # more than ~60 degrees over the transit

    def test_normal_theta_is_steady_not_spiky(self, curve_sim):
        art = build_artifacts(curve_sim, mode="oracle")
        normal_tracks = [
            t for t in art.tracks
            if not any(r.involves(t.track_id) for r in curve_sim.incidents)
        ]
        series = extract_series(normal_tracks)
        thetas = np.concatenate([s.channels["theta"] for s in series])
        assert thetas.mean() > 0.02           # curvature registers...
        # ...but stays small almost everywhere (the tail belongs to the
        # benign lane-change/brake distractors, not to the bend itself).
        assert np.percentile(thetas, 90) < 0.35

    def test_incidents_are_sudden_stops(self, curve_sim):
        kinds = {r.kind for r in curve_sim.incidents}
        assert kinds == {"sudden_stop"}

    def test_retrieval_survives_curvature(self, curve_sim):
        """The accident query keys on vdiff conjunctions, so constant
        road curvature must not drown it."""
        art = build_artifacts(curve_sim, mode="oracle")
        protocol = run_protocol(art, MILRetrievalEngine, method="MIL",
                                top_k=10)
        assert protocol.initial >= 0.5
        assert protocol.final >= protocol.initial

    def test_too_many_stops_rejected(self):
        with pytest.raises(ConfigurationError, match="too short"):
            curve(n_frames=400, seed=0, n_sudden_stops=50)

    def test_stats_shape(self, curve_sim):
        stats = traffic_statistics(curve_sim)
        assert 1.0 < stats.mean_concurrency < 6.0
        assert stats.incident_kinds == ("sudden_stop",)
