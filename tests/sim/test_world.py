"""Unit tests for the kinematic traffic world."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim import Route, TrafficWorld, Vehicle, VehicleSpec
from repro.sim.world import VEHICLE_TEMPLATES, VehicleState


class TestVehicleSpec:
    def test_of_kind_uses_template(self):
        spec = VehicleSpec.of_kind(3, "truck")
        length, width, intensity = VEHICLE_TEMPLATES["truck"]
        assert (spec.length, spec.width, spec.intensity) == (
            length, width, intensity)
        assert spec.vid == 3

    def test_of_kind_rejects_unknown(self):
        with pytest.raises(ConfigurationError, match="unknown vehicle kind"):
            VehicleSpec.of_kind(0, "bicycle")


class TestVehicleState:
    def test_half_extents_follow_dominant_axis(self):
        horizontal = VehicleState(0, "car", 0, 0, 2.0, 0.1, 14, 7, 200)
        vertical = VehicleState(0, "car", 0, 0, 0.1, 2.0, 14, 7, 200)
        assert horizontal.half_extents() == (7.0, 3.5)
        assert vertical.half_extents() == (3.5, 7.0)

    def test_speed(self):
        s = VehicleState(0, "car", 0, 0, 3.0, 4.0, 14, 7, 200)
        assert s.speed == pytest.approx(5.0)


class TestRoute:
    def test_straight_route_drives_toward_end(self):
        route = Route.straight((0.0, 0.0), (100.0, 0.0), speed=2.0)
        v = route.desired_velocity(np.array([0.0, 0.0]))
        assert v == pytest.approx([2.0, 0.0])

    def test_route_finishes_at_last_waypoint(self):
        route = Route.straight((0.0, 0.0), (10.0, 0.0), speed=2.0)
        route.desired_velocity(np.array([0.0, 0.0]))  # consumes waypoint 0
        v = route.desired_velocity(np.array([9.0, 0.0]))  # within reach of end
        assert route.finished
        assert v == pytest.approx([0.0, 0.0])

    def test_multi_waypoint_route_advances(self):
        route = Route([(0, 0), (10, 0), (10, 10)], speed=1.0)
        route.desired_velocity(np.array([0.0, 0.0]))   # consumes waypoint 0
        route.desired_velocity(np.array([9.5, 0.0]))   # consumes waypoint 1
        assert route.target == pytest.approx([10.0, 10.0])

    def test_rejects_bad_waypoints(self):
        with pytest.raises(ConfigurationError):
            Route([(0.0, 0.0, 0.0)], speed=1.0)

    def test_rejects_nonpositive_speed(self):
        with pytest.raises(ConfigurationError):
            Route.straight((0, 0), (1, 0), speed=0.0)


def _world(**kwargs):
    defaults = dict(width=200, height=100, seed=0, speed_jitter=0.0)
    defaults.update(kwargs)
    return TrafficWorld(**defaults)


class TestTrafficWorld:
    def test_vehicle_travels_route(self):
        world = _world()
        route = Route.straight((0.0, 50.0), (150.0, 50.0), speed=3.0)
        world.add_vehicle(Vehicle(VehicleSpec(0), route))
        for _ in range(40):
            world.step()
        traj = world.vehicles[0].pos
        assert traj[0] > 100.0
        assert traj[1] == pytest.approx(50.0, abs=1.0)

    def test_duplicate_vid_rejected(self):
        world = _world()
        route = Route.straight((0, 0), (10, 0), 1.0)
        world.add_vehicle(Vehicle(VehicleSpec(1), route))
        with pytest.raises(ConfigurationError, match="duplicate"):
            world.add_vehicle(
                Vehicle(VehicleSpec(1), Route.straight((0, 0), (5, 0), 1.0))
            )

    def test_vehicle_not_active_before_spawn(self):
        world = _world()
        route = Route.straight((0.0, 50.0), (150.0, 50.0), speed=3.0)
        world.add_vehicle(Vehicle(VehicleSpec(0), route, spawn_frame=5))
        states = world.step()
        assert states == []
        for _ in range(5):
            states = world.step()
        assert len(states) == 1

    def test_vehicle_retires_outside_bounds(self):
        world = _world()
        route = Route.straight((180.0, 50.0), (400.0, 50.0), speed=5.0)
        world.add_vehicle(Vehicle(VehicleSpec(0), route))
        for _ in range(30):
            world.step()
        assert world.vehicles[0].retired
        assert world.step() == []

    def test_acceleration_is_bounded(self):
        world = _world(max_accel=0.5)
        route = Route.straight((0.0, 50.0), (190.0, 50.0), speed=4.0)
        vehicle = Vehicle(VehicleSpec(0), route)
        vehicle.vel = np.zeros(2)  # force a standing start
        world.add_vehicle(vehicle)
        prev_speed = 0.0
        for _ in range(10):
            states = world.step()
            if not states:
                break
            speed = states[0].speed
            assert speed - prev_speed <= 0.5 + 1e-9
            prev_speed = speed

    def test_car_following_prevents_overlap(self):
        world = _world(max_accel=1.0)
        lead = Vehicle(
            VehicleSpec(0), Route.straight((40.0, 50.0), (190.0, 50.0), 1.0)
        )
        chaser = Vehicle(
            VehicleSpec(1), Route.straight((10.0, 50.0), (190.0, 50.0), 3.5)
        )
        world.add_vehicles([lead, chaser])
        min_gap = np.inf
        for _ in range(60):
            world.step()
            if lead.retired or chaser.retired:
                break
            min_gap = min(min_gap, abs(lead.pos[0] - chaser.pos[0]))
        assert min_gap > 3.0

    def test_run_returns_result_with_all_frames(self):
        world = _world()
        route = Route.straight((0.0, 50.0), (150.0, 50.0), speed=3.0)
        world.add_vehicle(Vehicle(VehicleSpec(0), route))
        result = world.run(20, name="t", metadata={"a": 1})
        assert result.n_frames == 20
        assert len(result.states) == 20
        assert result.name == "t"
        assert result.metadata == {"a": 1}

    def test_trajectory_of_is_monotone_in_frames(self):
        world = _world()
        route = Route.straight((0.0, 50.0), (150.0, 50.0), speed=3.0)
        world.add_vehicle(Vehicle(VehicleSpec(0), route))
        result = world.run(30)
        traj = result.trajectory_of(0)
        assert traj.shape[1] == 3
        assert np.all(np.diff(traj[:, 0]) == 1)
        assert np.all(np.diff(traj[:, 1]) > 0)  # moves right

    def test_trajectory_of_unknown_vehicle_is_empty(self):
        world = _world()
        result = world.run(5)
        assert result.trajectory_of(99).shape == (0, 3)
