"""Tests for occlusion/dropout track stitching."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tracking import CentroidTracker, Track, stitch_tracks
from repro.vision.blobs import Blob
from repro.vision.pipeline import Detection


def _fragment(track_id, start_frame, start_xy, v, n):
    track = Track(track_id)
    x, y = start_xy
    for k in range(n):
        blob = Blob(cx=x + v[0] * k, cy=y + v[1] * k,
                    x0=0, y0=0, x1=4, y1=4, area=16,
                    mean_intensity=200.0)
        track.add(start_frame + k, blob)
    return track


class TestStitchTracks:
    def test_joins_gap_fragments(self):
        a = _fragment(0, 0, (0.0, 50.0), (3.0, 0.0), 20)   # ends frame 19
        b = _fragment(5, 28, (84.0, 50.0), (3.0, 0.0), 20)  # ~x at frame 28
        out = stitch_tracks([a, b], max_gap=15)
        assert len(out) == 1
        joined = out[0]
        assert joined.track_id == 0
        assert joined.first_frame == 0
        assert joined.last_frame == 47
        assert len(joined) == 40

    def test_far_fragments_not_joined(self):
        a = _fragment(0, 0, (0.0, 50.0), (3.0, 0.0), 20)
        b = _fragment(1, 28, (84.0, 150.0), (3.0, 0.0), 20)  # wrong lane
        assert len(stitch_tracks([a, b])) == 2

    def test_long_gap_not_joined(self):
        a = _fragment(0, 0, (0.0, 50.0), (3.0, 0.0), 20)
        b = _fragment(1, 60, (180.0, 50.0), (3.0, 0.0), 20)
        assert len(stitch_tracks([a, b], max_gap=15)) == 2

    def test_opposite_headings_not_joined(self):
        a = _fragment(0, 0, (0.0, 50.0), (3.0, 0.0), 20)
        # Starts where a's prediction lands, but drives the other way.
        b = _fragment(1, 25, (75.0, 50.0), (-3.0, 0.0), 20)
        assert len(stitch_tracks([a, b])) == 2

    def test_chain_collapses(self):
        a = _fragment(0, 0, (0.0, 50.0), (3.0, 0.0), 10)    # ends 9
        b = _fragment(1, 15, (45.0, 50.0), (3.0, 0.0), 10)  # ends 24
        c = _fragment(2, 30, (90.0, 50.0), (3.0, 0.0), 10)
        out = stitch_tracks([a, b, c])
        assert len(out) == 1
        assert len(out[0]) == 30

    def test_two_parallel_vehicles_stay_separate(self):
        a1 = _fragment(0, 0, (0.0, 40.0), (3.0, 0.0), 15)
        a2 = _fragment(1, 20, (60.0, 40.0), (3.0, 0.0), 15)
        b1 = _fragment(2, 0, (0.0, 80.0), (3.0, 0.0), 15)
        b2 = _fragment(3, 20, (60.0, 80.0), (3.0, 0.0), 15)
        out = stitch_tracks([a1, a2, b1, b2])
        assert len(out) == 2
        lanes = sorted(t.point_array()[0, 1] for t in out)
        assert lanes == [40.0, 80.0]

    def test_stopped_fragments_join_on_position(self):
        a = _fragment(0, 0, (50.0, 50.0), (0.0, 0.0), 10)
        b = _fragment(1, 15, (50.0, 50.0), (0.0, 0.0), 10)
        assert len(stitch_tracks([a, b])) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            stitch_tracks([], max_gap=0)
        with pytest.raises(ConfigurationError):
            stitch_tracks([], min_cos=2.0)

    def test_empty_input(self):
        assert stitch_tracks([]) == []


class TestStitchAfterOcclusion:
    def test_occlusion_band_fragments_rejoined(self):
        """Tracker splits at an occluder; stitching restores one track."""
        from repro.eval.robustness import inject_occlusion_band

        dets = []
        for f in range(60):
            x = 3.0 * f
            blob = Blob(cx=x, cy=50.0, x0=int(x) - 5, y0=47, x1=int(x) + 5,
                        y1=53, area=60, mean_intensity=200.0)
            dets.append([Detection(frame=f, blob=blob)])
        occluded = inject_occlusion_band(dets, 60.0, 110.0)
        fragments = CentroidTracker(max_misses=2,
                                    min_track_length=4).track(occluded)
        assert len(fragments) == 2  # the band split the vehicle
        stitched = stitch_tracks(fragments, max_gap=20)
        assert len(stitched) == 1
        assert stitched[0].covers(30)  # interpolates across the band
