"""Tests for blob-merge detection."""

import numpy as np
import pytest

from repro.tracking import Track
from repro.tracking.occlusion import (
    MergeEvent,
    MergeInterval,
    detect_merge_events,
    merge_intervals,
)
from repro.vision.blobs import Blob
from repro.vision.pipeline import Detection


def _track(track_id, xs, y, first_frame=0):
    track = Track(track_id)
    for i, x in enumerate(xs):
        blob = Blob(cx=float(x), cy=float(y), x0=int(x) - 5, y0=int(y) - 3,
                    x1=int(x) + 5, y1=int(y) + 3, area=60,
                    mean_intensity=200.0)
        track.add(first_frame + i, blob)
    return track


def _det(frame, x0, y0, x1, y1):
    blob = Blob(cx=(x0 + x1) / 2, cy=(y0 + y1) / 2, x0=x0, y0=y0,
                x1=x1, y1=y1, area=(x1 - x0) * (y1 - y0),
                mean_intensity=200.0)
    return Detection(frame=frame, blob=blob)


class TestDetectMergeEvents:
    def test_two_tracks_in_one_blob(self):
        a = _track(0, [10 + 2 * i for i in range(20)], 50)
        b = _track(1, [60 - 2 * i for i in range(20)], 52)
        # At frame 12 both sit near x=34: one wide blob covers them.
        detections = [[] for _ in range(20)]
        detections[12] = [_det(12, 25, 44, 46, 58)]
        events = detect_merge_events([a, b], detections)
        assert len(events) == 1
        assert events[0].track_ids == (0, 1)
        assert events[0].frame == 12

    def test_separate_blobs_no_event(self):
        a = _track(0, [10 + 2 * i for i in range(20)], 50)
        b = _track(1, [200 + 2 * i for i in range(20)], 52)
        detections = [[] for _ in range(20)]
        detections[12] = [_det(12, 29, 44, 40, 58), _det(12, 219, 44, 230, 58)]
        assert detect_merge_events([a, b], detections) == []

    def test_coasting_track_still_counted(self):
        """A track that died just before the merge still claims it."""
        a = _track(0, [10 + 2 * i for i in range(10)], 50)  # ends frame 9
        b = _track(1, [40 - 1 * i for i in range(14)], 51)
        detections = [[] for _ in range(14)]
        detections[12] = [_det(12, 22, 44, 42, 58)]
        events = detect_merge_events([a, b], detections, coast=5)
        assert events and events[0].track_ids == (0, 1)

    def test_empty_inputs(self):
        assert detect_merge_events([], [[], []]) == []

    def test_collision_scenario_produces_merges(self, small_intersection):
        """Real pipeline: crashing vehicles merge into one blob."""
        from repro.tracking import CentroidTracker
        from repro.vision import SegmentationPipeline, VideoClip

        clip = VideoClip.from_simulation(small_intersection, render_seed=3)
        detections = SegmentationPipeline(use_spcpe=False).process(clip)
        tracks = CentroidTracker().track(detections)
        events = detect_merge_events(tracks, detections)
        assert events, "collisions should create merged blobs"
        # At least one merge overlaps a true collision interval.
        collisions = [r for r in small_intersection.incidents
                      if r.kind == "collision"]
        hit = any(
            any(r.frame_start - 10 <= e.frame <= r.frame_end + 40
                for r in collisions)
            for e in events
        )
        assert hit


class TestMergeIntervals:
    def test_consecutive_frames_grouped(self):
        events = [MergeEvent(f, (0, 1), (0, 0, 10, 10))
                  for f in (5, 6, 7, 8)]
        intervals = merge_intervals(events)
        assert intervals == [MergeInterval((0, 1), 5, 8)]
        assert intervals[0].duration == 4

    def test_gap_splits_interval(self):
        events = [MergeEvent(f, (0, 1), (0, 0, 10, 10))
                  for f in (5, 6, 20, 21)]
        intervals = merge_intervals(events)
        assert len(intervals) == 2

    def test_groups_separated(self):
        events = [MergeEvent(5, (0, 1), (0, 0, 10, 10)),
                  MergeEvent(5, (2, 3), (50, 0, 60, 10))]
        intervals = merge_intervals(events)
        assert {iv.track_ids for iv in intervals} == {(0, 1), (2, 3)}
