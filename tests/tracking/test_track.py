"""Unit tests for the Track data type."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tracking import Track
from repro.vision.blobs import Blob


def _blob(x, y):
    return Blob(cx=float(x), cy=float(y), x0=int(x) - 5, y0=int(y) - 3,
                x1=int(x) + 5, y1=int(y) + 3, area=60, mean_intensity=200.0)


def _track(points, frames=None):
    track = Track(0)
    frames = frames if frames is not None else range(len(points))
    for f, (x, y) in zip(frames, points):
        track.add(f, _blob(x, y))
    return track


class TestAdd:
    def test_observations_accumulate(self):
        track = _track([(0, 0), (2, 0), (4, 0)])
        assert len(track) == 3
        assert track.first_frame == 0
        assert track.last_frame == 2
        assert track.point_array().shape == (3, 2)

    def test_non_increasing_frames_rejected(self):
        track = _track([(0, 0)])
        with pytest.raises(ConfigurationError):
            track.add(0, _blob(1, 1))


class TestVelocityAndPrediction:
    def test_constant_velocity_recovered(self):
        track = _track([(0, 0), (3, 0), (6, 0), (9, 0)])
        assert track.velocity() == pytest.approx([3.0, 0.0])

    def test_prediction_extrapolates(self):
        track = _track([(0, 0), (3, 0), (6, 0)])
        assert track.predict(4) == pytest.approx([12.0, 0.0])

    def test_velocity_of_single_point_is_zero(self):
        track = _track([(5, 5)])
        assert track.velocity() == pytest.approx([0.0, 0.0])
        assert track.predict(10) == pytest.approx([5.0, 5.0])

    def test_velocity_respects_frame_gaps(self):
        track = _track([(0, 0), (10, 0)], frames=[0, 5])
        assert track.velocity() == pytest.approx([2.0, 0.0])

    def test_predict_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Track(0).predict(3)


class TestPositionAt:
    def test_exact_frame(self):
        track = _track([(0, 0), (2, 2), (4, 4)])
        assert track.position_at(1) == pytest.approx([2.0, 2.0])

    def test_interpolates_gaps(self):
        track = _track([(0, 0), (10, 20)], frames=[0, 10])
        assert track.position_at(5) == pytest.approx([5.0, 10.0])

    def test_outside_span_rejected(self):
        track = _track([(0, 0), (1, 1)])
        with pytest.raises(ConfigurationError):
            track.position_at(5)

    def test_covers(self):
        track = _track([(0, 0), (1, 1)], frames=[3, 7])
        assert track.covers(3) and track.covers(5) and track.covers(7)
        assert not track.covers(2) and not track.covers(8)
