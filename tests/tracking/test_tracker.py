"""Tests for Hungarian data association."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tracking import CentroidTracker, smooth_points
from repro.vision.blobs import Blob
from repro.vision.pipeline import Detection


def _det(frame, x, y):
    blob = Blob(cx=float(x), cy=float(y), x0=int(x) - 5, y0=int(y) - 3,
                x1=int(x) + 5, y1=int(y) + 3, area=60, mean_intensity=200.0)
    return Detection(frame=frame, blob=blob)


def _linear_detections(n_frames, starts_and_vels):
    """Per-frame detections for vehicles moving at constant velocity."""
    per_frame = []
    for f in range(n_frames):
        dets = []
        for (x0, y0), (vx, vy) in starts_and_vels:
            dets.append(_det(f, x0 + vx * f, y0 + vy * f))
        per_frame.append(dets)
    return per_frame


class TestSingleTarget:
    def test_one_track_per_vehicle(self):
        dets = _linear_detections(20, [((0, 50), (3, 0))])
        tracks = CentroidTracker().track(dets)
        assert len(tracks) == 1
        assert len(tracks[0]) == 20

    def test_track_points_match_detections(self):
        dets = _linear_detections(10, [((0, 50), (3, 0))])
        track = CentroidTracker().track(dets)[0]
        assert track.point_array()[4] == pytest.approx([12.0, 50.0])


class TestMultiTarget:
    def test_two_parallel_vehicles_stay_separate(self):
        dets = _linear_detections(
            25, [((0, 40), (3, 0)), ((0, 80), (3, 0))])
        tracks = CentroidTracker().track(dets)
        assert len(tracks) == 2
        ys = sorted(t.point_array()[:, 1].mean() for t in tracks)
        assert ys[0] == pytest.approx(40.0)
        assert ys[1] == pytest.approx(80.0)

    def test_crossing_vehicles_keep_identity(self):
        """Two fast vehicles crossing paths: prediction should keep ids."""
        dets = _linear_detections(
            30, [((0, 0), (4, 4)), ((0, 120), (4, -4))])
        tracks = CentroidTracker(max_match_dist=20).track(dets)
        assert len(tracks) == 2
        for t in tracks:
            ys = t.point_array()[:, 1]
            # Each track should be monotone in y, not bouncing at the cross.
            diffs = np.diff(ys)
            assert np.all(diffs > 0) or np.all(diffs < 0)


class TestTrackLifecycle:
    def test_gap_is_coasted(self):
        dets = _linear_detections(20, [((0, 50), (3, 0))])
        dets[10] = []  # one-frame dropout
        tracks = CentroidTracker(max_misses=3).track(dets)
        assert len(tracks) == 1
        assert len(tracks[0]) == 19
        assert tracks[0].covers(10)

    def test_long_gap_splits_track(self):
        dets = _linear_detections(30, [((0, 50), (3, 0))])
        for f in range(10, 18):
            dets[f] = []
        tracks = CentroidTracker(max_misses=2, min_track_length=3).track(dets)
        assert len(tracks) == 2

    def test_short_tracks_dropped(self):
        dets = [[_det(0, 10, 10)], [_det(1, 12, 10)], [], [], [], [], []]
        tracks = CentroidTracker(max_misses=1, min_track_length=5).track(dets)
        assert tracks == []

    def test_new_vehicle_mid_clip(self):
        dets = _linear_detections(20, [((0, 40), (3, 0))])
        for f in range(8, 20):
            dets[f].append(_det(f, 3 * (f - 8), 100))
        tracks = CentroidTracker().track(dets)
        assert len(tracks) == 2
        assert min(t.first_frame for t in tracks) == 0
        assert max(t.first_frame for t in tracks) == 8

    def test_track_ids_unique_and_ordered(self):
        dets = _linear_detections(
            15, [((0, 30), (3, 0)), ((0, 60), (3, 0)), ((0, 90), (3, 0))])
        tracks = CentroidTracker().track(dets)
        ids = [t.track_id for t in tracks]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_match_dist": 0},
        {"max_misses": -1},
        {"min_track_length": 0},
    ])
    def test_bad_params(self, kwargs):
        with pytest.raises(ConfigurationError):
            CentroidTracker(**kwargs)


class TestSmoothing:
    def test_smooth_reduces_jitter(self):
        rng = np.random.default_rng(0)
        clean = np.column_stack([np.arange(50.0), np.zeros(50)])
        noisy = clean + rng.normal(0, 1.0, clean.shape)
        smooth = smooth_points(noisy, window=5)
        assert np.abs(smooth[:, 1]).mean() < np.abs(noisy[:, 1]).mean()

    def test_endpoints_preserved(self):
        pts = np.array([[0.0, 0.0], [1.0, 5.0], [2.0, 0.0], [3.0, 5.0]])
        out = smooth_points(pts, window=3)
        assert out[0] == pytest.approx(pts[0])
        assert out[-1] == pytest.approx(pts[-1])

    def test_window_one_is_identity(self):
        pts = np.random.default_rng(1).normal(size=(10, 2))
        assert np.array_equal(smooth_points(pts, window=1), pts)

    def test_even_window_rejected(self):
        with pytest.raises(ConfigurationError):
            smooth_points(np.zeros((5, 2)), window=4)


class TestEndToEndTracking:
    def test_tracks_recover_simulated_vehicles(self, small_tunnel):
        """Vision pipeline + tracker vs simulator ground truth."""
        from repro.sim.ground_truth import TrackMatcher
        from repro.vision import SegmentationPipeline, VideoClip

        clip = VideoClip.from_simulation(small_tunnel, render_seed=2)
        detections = SegmentationPipeline(use_spcpe=False).process(clip)
        tracks = CentroidTracker().track(detections)
        assert tracks, "no tracks recovered"

        matcher = TrackMatcher(small_tunnel)
        matched = [
            matcher.match(t.frame_array(), t.point_array()) for t in tracks
        ]
        match_rate = np.mean([m is not None for m in matched])
        assert match_rate > 0.8
        # Most true vehicles that spend enough time in frame are covered.
        covered = {m for m in matched if m is not None}
        long_lived = {
            vid for vid in small_tunnel.vehicle_ids()
            if len(small_tunnel.trajectory_of(vid)) > 40
        }
        assert len(covered & long_lived) / max(len(long_lived), 1) > 0.75
