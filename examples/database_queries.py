"""The database view: ingest clips, query by metadata, query by event.

The paper's setting is a *video database*: clips arrive with time/place
metadata, trajectories are modeled (compact polynomials) and recorded,
and semantic queries with per-user relevance feedback run on top.  This
example builds a small two-camera database on disk, shows metadata
queries, then runs a persistent semantic query session that survives a
process restart (here: a session re-open).

Run:  python examples/database_queries.py
"""

import tempfile
from pathlib import Path

from repro.core import OracleUser
from repro.db import SemanticQuerySession, VideoDatabase
from repro.eval import build_artifacts
from repro.sim import GroundTruth, intersection, tunnel


def ingest(db: VideoDatabase, sim, start_time: str):
    artifacts = build_artifacts(sim, mode="oracle")
    db.ingest_simulation(sim, artifacts.tracks, artifacts.dataset,
                         start_time=start_time)
    return artifacts


def main() -> None:
    tmp = Path(tempfile.mkdtemp(prefix="repro-db-"))
    db_path = tmp / "surveillance.db"
    print(f"creating database at {db_path}\n")

    with VideoDatabase(db_path) as db:
        art_tunnel = ingest(db, tunnel(n_frames=800, seed=4,
                                       spawn_interval=(50.0, 80.0),
                                       n_wall_crashes=3, n_sudden_stops=2),
                            "2026-07-06T07:30:00")
        ingest(db, intersection(seed=1), "2026-07-06T08:15:00")

        print("metadata queries:")
        for clip in db.clips():
            print(f"  {clip.clip_id}: location={clip.location} "
                  f"camera={clip.camera} frames={clip.n_frames} "
                  f"start={clip.start_time}")
        tunnel_clips = db.clips(location="tunnel")
        print(f"  clips at location='tunnel': "
              f"{[c.clip_id for c in tunnel_clips]}")

        record = db.track_records("tunnel")[0]
        print(f"\nstored trajectory model for track {record.track_id}: "
              f"degree {record.degree}, rms error "
              f"{record.rms_error:.2f} px (compact polynomial, paper "
              f"Section 3.2)")

        print("\nsemantic query: accidents in the tunnel, user=alice")
        session = SemanticQuerySession(db, "tunnel", "accident",
                                       user_id="alice", top_k=8)
        user = OracleUser(art_tunnel.ground_truth)
        for round_index in range(2):
            bags = [session.dataset.bag_by_id(b) for b in session.results()]
            labels = user.label_bags(bags)
            hits = sum(labels.values())
            print(f"  round {round_index}: {hits}/8 relevant")
            session.feed(labels)

    # Re-open the database: alice's feedback is persisted, the engine
    # resumes exactly where she left off.
    with VideoDatabase(db_path) as db:
        resumed = SemanticQuerySession(db, "tunnel", "accident",
                                       user_id="alice", top_k=8)
        print(f"\nre-opened database: alice resumes at round "
              f"{resumed.round_index} with "
              f"{len(resumed.engine.labels)} stored labels")
        print(f"current top-3 windows: {resumed.result_windows()[:3]}")


if __name__ == "__main__":
    main()
