"""Paper Figure 8 workload: tunnel accidents, MIL vs weighted RF.

Reproduces the clip-1 experiment at full scale (2500 frames): both
methods share the heuristic Initial round; the MIL framework with a
One-class SVM climbs over the feedback rounds while the classic weighted
relevance-feedback baseline barely moves.

Run:  python examples/tunnel_accidents.py         (vision pipeline, ~30 s)
      python examples/tunnel_accidents.py oracle  (oracle tracks, fast)
"""

import sys

from repro.eval import figure8
from repro.eval.reporting import comparison_table


def main(mode: str = "vision") -> None:
    print(f"building the tunnel workload and running 5 RF rounds "
          f"(mode={mode}) ...\n")
    result = figure8(seed=0, mode=mode)
    print(comparison_table(result))
    mil = result.series["MIL_OCSVM"]
    wrf = result.series["Weighted_RF"]
    print(f"\nMIL gain {mil[-1] - mil[0]:+.0%} vs Weighted_RF gain "
          f"{wrf[-1] - wrf[0]:+.0%} — the paper's Figure 8 shape.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "vision")
