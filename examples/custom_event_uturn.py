"""Adjusting the event model: querying U-turns and speeding.

Paper Section 4: "this event model may also be adjusted to detect
U-turns, speeding and any other event that involves the abnormal
behavior of a vehicle."  An event model in this library is just a named
selection of feature channels, so the adjustment is a few lines — shown
here both with the built-in models and with a custom one.

Run:  python examples/custom_event_uturn.py
"""

from repro.core import MILRetrievalEngine, OracleUser, RetrievalSession
from repro.eval import build_artifacts
from repro.events.models import EventModel
from repro.sim import highway


class HardTurnModel(EventModel):
    """Custom model: any sharp sustained heading change (U-turns, but
    also aggressive lane weaving), ignoring distances entirely."""

    name = "hard_turn"
    feature_names = ("theta_cum", "theta", "vdiff")
    relevant_kinds = frozenset({"u_turn"})


def run_query(sim, event, top_k=10) -> list[float]:
    from repro.events.models import event_model_for

    model = event if isinstance(event, EventModel) else event_model_for(event)
    artifacts = build_artifacts(sim, event=model, mode="oracle")
    engine = MILRetrievalEngine(artifacts.dataset)
    user = OracleUser(artifacts.ground_truth, model.relevant_kinds)
    session = RetrievalSession(engine, user, top_k=top_k)
    session.run(4)
    return session.accuracies()


def main() -> None:
    sim = highway(seed=2)
    kinds = sorted({r.kind for r in sim.incidents})
    print(f"highway clip with events: {kinds}\n")

    for event in ("u_turn", "speeding"):
        accs = run_query(sim, event)
        print(f"built-in {event:9s} query: "
              f"{['%.0f%%' % (a * 100) for a in accs]}")

    accs = run_query(sim, HardTurnModel())
    print(f"custom  hard_turn query: "
          f"{['%.0f%%' % (a * 100) for a in accs]}")
    print("\nSame engine, same feedback loop — only the feature channels "
          "and ground-truth kinds changed.")


if __name__ == "__main__":
    main()
