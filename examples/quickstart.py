"""Quickstart: simulate a clip, run the pipeline, retrieve accidents.

Runs the complete loop of the paper in under a minute:

1. simulate a short tunnel surveillance clip with scripted incidents;
2. render frames and run the vision front end (background subtraction,
   blob extraction, centroid tracking);
3. extract sampling-point features and cut Video Sequences (MIL bags);
4. retrieve accidents interactively: initial heuristic ranking, then
   One-class-SVM refinement from (simulated) relevance feedback.

Run:  python examples/quickstart.py
"""

from repro.core import MILRetrievalEngine, OracleUser, RetrievalSession
from repro.eval import build_artifacts
from repro.sim import tunnel

TOP_K = 10
ROUNDS = 4


def main() -> None:
    print("simulating a 700-frame tunnel clip ...")
    sim = tunnel(n_frames=700, seed=3, spawn_interval=(50.0, 80.0),
                 n_wall_crashes=2, n_sudden_stops=2)
    print(f"  scripted incidents: "
          f"{[(r.kind, r.frame_start) for r in sim.incidents]}")

    print("running vision pipeline + tracking + event features ...")
    artifacts = build_artifacts(sim, mode="vision")
    dataset = artifacts.dataset
    print(f"  {len(artifacts.tracks)} tracks -> {len(dataset)} Video "
          f"Sequences / {dataset.n_instances} Trajectory Sequences")

    engine = MILRetrievalEngine(dataset)
    user = OracleUser(artifacts.ground_truth)  # plays the human
    session = RetrievalSession(engine, user, top_k=TOP_K)

    print(f"\ninteractive retrieval, top-{TOP_K}, {ROUNDS} rounds:")
    for _ in range(ROUNDS):
        result = session.run_round()
        marks = ["+" if result.labels[b] else "." for b in
                 result.returned_bag_ids]
        print(f"  round {result.round_index}: accuracy "
              f"{result.accuracy():.0%}   [{' '.join(marks)}]")

    print("\nfinal top results (frame windows the user would replay):")
    for bag_id in engine.top_k(5):
        bag = dataset.bag_by_id(bag_id)
        truth = "ACCIDENT" if user.true_label(bag) else "normal"
        print(f"  VS {bag_id}: frames {bag.frame_lo}-{bag.frame_hi}  "
              f"({truth})")


if __name__ == "__main__":
    main()
