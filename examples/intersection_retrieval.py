"""Paper Figure 9 workload: multi-vehicle collisions at an intersection.

Clip 2 of the paper: a busy crossing with turning traffic, near-miss
panic brakes and scheduled two-vehicle collisions.  Accidents here
involve two or more vehicles, which is exactly the case the Multiple
Instance Learning mapping exists for: the user labels a whole Video
Sequence, and the engine works out which Trajectory Sequences matter.

Run:  python examples/intersection_retrieval.py
"""

from repro.core import MILRetrievalEngine, OracleUser, RetrievalSession
from repro.eval import build_artifacts
from repro.sim import GroundTruth, intersection


def main() -> None:
    sim = intersection(seed=1)
    print(f"simulated {sim.n_frames}-frame intersection clip: "
          f"{sum(r.kind == 'collision' for r in sim.incidents)} collisions")

    artifacts = build_artifacts(sim, mode="vision")
    dataset = artifacts.dataset
    print(f"dataset: {len(dataset)} bags, {dataset.n_instances} instances "
          f"({dataset.n_instances / len(dataset):.1f} TSs per VS — "
          f"multi-vehicle scenes)")

    engine = MILRetrievalEngine(dataset)
    user = OracleUser(artifacts.ground_truth)
    session = RetrievalSession(engine, user, top_k=20)
    session.run(5)
    print(f"accuracy per round: "
          f"{['%.0f%%' % (a * 100) for a in session.accuracies()]}")

    # Show which vehicles the engine considers responsible in the top hit:
    # the MIL promise is bag-level labels -> instance-level insight.
    top_id = engine.top_k(1)[0]
    top_bag = dataset.bag_by_id(top_id)
    print(f"\ntop Video Sequence: frames {top_bag.frame_lo}-"
          f"{top_bag.frame_hi} with {top_bag.n_instances} vehicles:")
    for explanation in engine.explain(top_id):
        channel, value = explanation.peak_feature()
        print(f"  #{explanation.rank} track {explanation.track_id:3d}: "
              f"decision {explanation.score:+.4f}  "
              f"(peak feature: {channel} = {value:+.2f})")
    print("the highest-scoring Trajectory Sequences are the vehicles the "
          "engine believes were involved.")


if __name__ == "__main__":
    main()
