"""End-to-end walkthrough: every subsystem on one city-grid clip.

Simulates routed traffic on a street grid (networkx), runs the full
vision pipeline, repairs tracks across occlusions, classifies vehicles,
detects blob merges (the visual signature of a collision), stores it all
in a database, and runs an interactive accident query with explanations.

Run:  python examples/full_walkthrough.py        (~30 s)
"""

import tempfile
from pathlib import Path

from repro.core import MILRetrievalEngine, OracleUser, RetrievalSession
from repro.db import SemanticQuerySession, VideoDatabase
from repro.eval import build_artifacts
from repro.eval.diagnostics import evaluate_instance_discovery
from repro.sim import GroundTruth, city_grid, traffic_statistics
from repro.tracking import (
    CentroidTracker,
    detect_merge_events,
    merge_intervals,
    stitch_tracks,
)
from repro.vision import (
    SegmentationPipeline,
    VideoClip,
    classify_tracks,
    evaluate_detections,
    evaluate_tracking,
)


def main() -> None:
    print("1) simulate: routed traffic on a 4x3 street grid")
    sim = city_grid(seed=4)
    print(f"   {traffic_statistics(sim).summary()}\n")

    print("2) vision: render, subtract background, extract blobs")
    clip = VideoClip.from_simulation(sim, render_seed=1)
    detections = SegmentationPipeline(use_spcpe=False).process(clip)
    det_quality = evaluate_detections(sim, detections)
    print(f"   {det_quality}\n")

    print("3) tracking: associate, then stitch occlusion fragments")
    fragments = CentroidTracker().track(detections)
    tracks = stitch_tracks(fragments)
    track_quality = evaluate_tracking(sim, tracks)
    print(f"   {len(fragments)} fragments -> {len(tracks)} tracks; "
          f"{track_quality}\n")

    print("4) classification + merge analysis")
    classes = classify_tracks(clip, tracks)
    counts = {c: list(classes.values()).count(c)
              for c in sorted(set(classes.values()))}
    print(f"   vehicle classes: {counts}")
    intervals = merge_intervals(detect_merge_events(tracks, detections))
    for interval in intervals[:3]:
        print(f"   blob merge: tracks {interval.track_ids} share one blob "
              f"frames {interval.frame_lo}-{interval.frame_hi}")
    print()

    print("5) events + retrieval: the paper's interactive loop")
    # Grid scenes are the hard case: every junction turn is normal theta
    # activity and identity switches add noise, so give the user the
    # paper's full top-20 budget per round.
    artifacts = build_artifacts(sim, mode="vision", stitch=True)
    engine = MILRetrievalEngine(artifacts.dataset)
    user = OracleUser(artifacts.ground_truth)
    session = RetrievalSession(engine, user, top_k=20)
    session.run(4)
    print(f"   accuracy per round: "
          f"{['%.0f%%' % (a * 100) for a in session.accuracies()]}")
    top_id = engine.top_k(1)[0]
    print(f"   top hit explanation (VS {top_id}):")
    for explanation in engine.explain(top_id)[:3]:
        channel, value = explanation.peak_feature()
        print(f"     #{explanation.rank} track {explanation.track_id}: "
              f"score {explanation.score:+.3f}, peak {channel}={value:+.2f}")
    discovery = evaluate_instance_discovery(artifacts, engine)
    print(f"   instance attribution: {discovery}\n")

    print("6) database: persist and query with a vehicle-class filter")
    db_path = Path(tempfile.mkdtemp(prefix="repro-walkthrough-")) / "g.db"
    with VideoDatabase(db_path) as db:
        db.ingest_simulation(sim, artifacts.tracks, artifacts.dataset,
                             vehicle_classes=classify_tracks(
                                 clip, artifacts.tracks))
        query = SemanticQuerySession(db, sim.name, "accident", top_k=5)
        print(f"   top-5 accident windows: {query.result_windows()}")
        trucks = query.results(vehicle_class="truck")
        print(f"   ... restricted to scenes with a truck: {trucks}")
    print(f"\ndatabase on disk: {db_path}")


if __name__ == "__main__":
    main()
