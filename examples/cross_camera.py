"""Cross-camera retrieval with plane normalization (paper future work).

The paper closes by noting that mining all clips "as a whole" needs the
clips normalized for "camera angle and camera position".  This example
shoots two intersection clips through two different cameras (overhead
and strongly tilted), calibrates each camera from a handful of surveyed
road landmarks, back-projects the tracks onto the road plane, and
retrieves accidents over the merged two-camera corpus — comparing raw
image-plane features against normalized ones.

Run:  python examples/cross_camera.py        (~10 s)
"""

from repro.eval.experiments import cross_camera
from repro.eval.reporting import comparison_table


def main() -> None:
    print("two intersection clips, two cameras (overhead + 35-degree "
          "tilt),\ncalibration from 8 surveyed landmarks, merged-corpus "
          "retrieval ...\n")
    result = cross_camera()
    print(comparison_table(result))
    raw = result.series["raw_image_plane"][-1]
    norm = result.series["plane_normalized"][-1]
    print(f"\nnormalizing to the road plane is worth "
          f"{(norm - raw) * 100:+.0f} accuracy points on the merged "
          f"corpus — the normalization the paper calls for.")


if __name__ == "__main__":
    main()
